package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/workload"
)

// smallSpec is a fast-but-real run: a 16-core baseline cell over the micro
// workload, a few milliseconds of wall clock.
func smallSpec(seed uint64) chip.Spec {
	v, _ := config.ByName("Baseline")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 200
	spec.MeasureOps = 500
	spec.Seed = seed
	return spec
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestCacheLRUEviction: the per-shard LRU must evict the least recently
// used fingerprint and count the eviction.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 1) // one shard, two entries
	r := &chip.Results{}
	for _, fp := range []string{"a", "b"} {
		if out, _, _ := c.admit(fp, nil); out != admitNew {
			t.Fatalf("admit(%s) = %v, want new", fp, out)
		}
		c.complete(fp, r)
	}
	if out, _, _ := c.admit("a", nil); out != admitHit { // refresh a
		t.Fatalf("a should be cached")
	}
	if out, _, _ := c.admit("c", nil); out != admitNew {
		t.Fatalf("c should miss")
	}
	c.complete("c", r) // evicts b, the LRU entry
	if out, _, _ := c.admit("b", nil); out != admitNew {
		t.Fatalf("b should have been evicted, admit = %v", out)
	}
	c.release("b")
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := c.size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

// TestCacheDedupCoalesces: while a fingerprint is in flight, identical
// admissions join it; completion frees the slot.
func TestCacheDedupCoalesces(t *testing.T) {
	c := newResultCache(8, 4)
	owner := &job{id: "j-1"}
	if out, _, _ := c.admit("fp", owner); out != admitNew {
		t.Fatal("first admission must be new")
	}
	out, _, twin := c.admit("fp", &job{id: "j-2"})
	if out != admitJoin || twin != owner {
		t.Fatalf("second admission = %v/%v, want join onto j-1", out, twin)
	}
	c.complete("fp", &chip.Results{})
	if out, res, _ := c.admit("fp", nil); out != admitHit || res == nil {
		t.Fatalf("post-completion admission = %v, want cache hit", out)
	}
}

// TestSubmitBackpressure: a full queue must reject with ErrQueueFull and
// leave no stale in-flight registration behind.
func TestSubmitBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// No Start(): jobs stay queued.
	if _, err := s.Submit(smallSpec(1)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := s.Submit(smallSpec(2))
	if err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().Value("serve/rejected"); got != 1 {
		t.Fatalf("serve/rejected = %d, want 1", got)
	}
	// The rejected fingerprint must be admissible again (no inflight leak).
	if _, _, twin := s.cache.admit(smallSpec(2).Fingerprint(), &job{}); twin != nil {
		t.Fatal("rejected submission left a stale in-flight registration")
	}
}

// TestSubmitValidation: nonsense specs are rejected before queueing.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	spec := smallSpec(1)
	spec.MeasureOps = 0
	if _, err := s.Submit(spec); err != ErrInvalidSpec {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}

// TestDedupReturnsSameJob: two concurrent submissions of one spec share a
// single job id and a single simulation.
func TestDedupReturnsSameJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	spec := smallSpec(3)
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Deduped || st2.ID != st1.ID {
		t.Fatalf("duplicate submission got job %q (deduped=%v), want join onto %q", st2.ID, st2.Deduped, st1.ID)
	}
	if got := s.Metrics().Value("serve/deduped"); got != 1 {
		t.Fatalf("serve/deduped = %d, want 1", got)
	}
}

// TestShardedSequentialDedupe: Spec.Shards is an engine switch excluded
// from the fingerprint, so a sequential client and a sharded client (or
// cluster nodes started with different -sim-shards) collapse the same
// experiment onto one job and one cache entry — safe precisely because
// the two engines produce bit-identical results.
func TestShardedSequentialDedupe(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	seq := smallSpec(4)
	par := smallSpec(4)
	par.Shards = 4
	if seq.Fingerprint() != par.Fingerprint() {
		t.Fatal("Shards leaked into the fingerprint")
	}
	st1, err := s.Submit(seq)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(par)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Deduped || st2.ID != st1.ID {
		t.Fatalf("sharded twin got job %q (deduped=%v), want join onto sequential %q", st2.ID, st2.Deduped, st1.ID)
	}
}

// TestJournalRoundTrip: entries survive the file format, and reading
// consumes the journal.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	in := []journalEntry{
		{ID: "j-1", Spec: smallSpec(1)},
		{ID: "j-9", Spec: smallSpec(2)},
	}
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readJournal(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != "j-1" || out[1].ID != "j-9" {
		t.Fatalf("round trip: %+v", out)
	}
	if out[1].Spec.Fingerprint() != in[1].Spec.Fingerprint() {
		t.Fatal("spec fingerprint changed across the journal")
	}
	// Consumed: a second read is empty.
	again, err := readJournal(path, t.Logf)
	if err != nil || len(again) != 0 {
		t.Fatalf("journal not consumed: %v, %v", again, err)
	}
	// Empty write removes the file.
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	if err := writeJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := readJournal(path, t.Logf); got != nil {
		t.Fatalf("empty journal write should remove the file, read %v", got)
	}
}

// TestJournalTornFinalRecord: a crash mid-append leaves a truncated last
// line; replay must skip exactly that record with a warning and keep every
// intact one — losing the whole backlog to one torn write would turn a
// crash into a data loss.
func TestJournalTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	in := []journalEntry{
		{ID: "j-1", Spec: smallSpec(1)},
		{ID: "j-2", Spec: smallSpec(2)},
		{ID: "j-3", Spec: smallSpec(3)},
	}
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop the file mid-way through the last line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[:len(raw)-1] // drop trailing newline
	cut := bytes.LastIndexByte(body, '\n') + 1 + 10
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	var warned []string
	warn := func(format string, args ...any) { warned = append(warned, fmt.Sprintf(format, args...)) }
	out, err := readJournal(path, warn)
	if err != nil {
		t.Fatalf("torn final record aborted replay: %v", err)
	}
	if len(out) != 2 || out[0].ID != "j-1" || out[1].ID != "j-2" {
		t.Fatalf("intact records lost: %+v", out)
	}
	if len(warned) != 1 || !strings.Contains(warned[0], "torn final record") {
		t.Fatalf("torn record skipped without a warning: %v", warned)
	}

	// A server built over a torn journal replays the intact backlog.
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, Journal: path, Logf: warn})
	if got := s.Metrics().Value("serve/journal_replayed"); got != 2 {
		t.Fatalf("serve/journal_replayed = %d, want 2", got)
	}

	// Corruption that is NOT the final record is unexplainable by a torn
	// append and must abort.
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	lines := bytes.SplitN(raw, []byte("\n"), 2)
	garbled := append(append([]byte(`{"id": garbage`), '\n'), lines[1]...)
	if err := os.WriteFile(path, garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJournal(path, warn); err == nil {
		t.Fatal("corrupt interior record did not abort replay")
	}
}

// TestBackpressureWaitJitterAndBounds: backpressure sleeps grow
// exponentially from the server's hint, stay inside [w/2, 3w/2), cap at
// the bound, and actually jitter — identical waits across workers would
// recreate the lockstep stampede the jitter exists to break.
func TestBackpressureWaitJitterAndBounds(t *testing.T) {
	grown := func(attempt int) time.Duration {
		w := time.Second
		for i := 1; i < attempt && w < backpressureMaxWait; i++ {
			w *= 2
		}
		if w > backpressureMaxWait {
			w = backpressureMaxWait
		}
		return w
	}
	distinct := map[time.Duration]bool{}
	for attempt := 1; attempt <= 8; attempt++ {
		g := grown(attempt)
		for i := 0; i < 64; i++ {
			w := backpressureWait(time.Second, attempt)
			if w < g/2 || w >= g/2+g {
				t.Fatalf("attempt %d: wait %v outside [%v, %v)", attempt, w, g/2, g/2+g)
			}
			if attempt == 1 {
				distinct[w] = true
			}
		}
	}
	if len(distinct) < 2 {
		t.Fatal("backpressure waits do not jitter")
	}
	// A zero/absent hint falls back to one second, never a zero sleep.
	if w := backpressureWait(0, 1); w < 500*time.Millisecond {
		t.Fatalf("zero hint produced %v", w)
	}
}

// TestRunBackpressureCappedByDeadline: a Run against a saturated server
// whose context deadline cannot fit the next backpressure sleep fails
// promptly with the backpressure error instead of sleeping through the
// caller's remaining budget.
func TestRunBackpressureCappedByDeadline(t *testing.T) {
	// Full queue and no workers: every submission answers 429.
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	if _, err := s.Submit(smallSpec(31)); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	cl := NewClient(hs.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Run(ctx, smallSpec(32))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Run succeeded against a saturated server")
	}
	if _, ok := IsBackpressure(errors.Unwrap(err)); !ok {
		t.Fatalf("error does not wrap the backpressure cause: %v", err)
	}
	// The server's hint is 1s; the deadline is 250ms. Run must give up as
	// soon as it sees the sleep cannot fit — well before the hint.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("Run slept %v past a %v deadline", elapsed, 250*time.Millisecond)
	}
}

// TestPolicyRunRejected: the server is the executor; a policy with a Run
// override is a misconfiguration.
func TestPolicyRunRejected(t *testing.T) {
	_, err := New(Config{Policy: exp.Policy{
		Run: func(context.Context, chip.Spec) (*chip.Results, error) { return nil, nil },
	}})
	if err == nil {
		t.Fatal("New accepted a Policy.Run override")
	}
}
