package serve

import (
	"container/list"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"reactivenoc/internal/chip"
)

// resultCache memoizes chip.Results by spec fingerprint across a fixed set
// of shards: the fingerprint hash picks the shard, so submissions for
// different specs contend on different locks. Each shard is an independent
// LRU bounded at perShard entries, and also carries the shard's in-flight
// index — the dedup table that coalesces an identical submission onto the
// job already queued or running for it. Keeping cache and dedup state in
// the same shard means one lock acquisition decides hit / join / miss
// atomically, so two racing submissions of a new spec can never both
// become simulations.
type resultCache struct {
	shards   []cacheShard
	perShard int

	hits, misses, evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List               // front = most recent; values are *cacheEntry
	byF map[string]*list.Element // fingerprint -> lru element
	// inflight maps fingerprints to the live job that will produce their
	// result (dedup target).
	inflight map[string]*job
}

type cacheEntry struct {
	fp  string
	res *chip.Results
}

// newResultCache builds shards sized so the whole cache holds ~capacity
// entries. Shard count is fixed and small; capacity below the shard count
// still leaves one entry per shard.
func newResultCache(capacity, shards int) *resultCache {
	if shards <= 0 {
		shards = 16
	}
	if capacity <= 0 {
		capacity = 512
	}
	per := (capacity + shards - 1) / shards
	c := &resultCache{shards: make([]cacheShard, shards), perShard: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].byF = map[string]*list.Element{}
		c.shards[i].inflight = map[string]*job{}
	}
	return c
}

// shardFor routes a fingerprint to its shard.
func (c *resultCache) shardFor(fp string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// admitOutcome is what a submission learned under one shard lock.
type admitOutcome int

const (
	admitHit  admitOutcome = iota // cached results returned
	admitJoin                     // coalesced onto an in-flight job
	admitNew                      // caller's job registered in-flight
)

// admit decides a submission's fate atomically: a cached result wins, an
// in-flight twin is joined, otherwise the caller's fresh job is registered
// as the fingerprint's in-flight owner.
func (c *resultCache) admit(fp string, fresh *job) (admitOutcome, *chip.Results, *job) {
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byF[fp]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		return admitHit, el.Value.(*cacheEntry).res, nil
	}
	if twin, ok := s.inflight[fp]; ok {
		return admitJoin, nil, twin
	}
	c.misses.Add(1)
	s.inflight[fp] = fresh
	return admitNew, nil, nil
}

// complete stores a finished run's results (nil res for failures) and
// releases the fingerprint's in-flight slot.
func (c *resultCache) complete(fp string, res *chip.Results) {
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, fp)
	if res == nil {
		return
	}
	if el, ok := s.byF[fp]; ok {
		el.Value.(*cacheEntry).res = res
		s.lru.MoveToFront(el)
		return
	}
	s.byF[fp] = s.lru.PushFront(&cacheEntry{fp: fp, res: res})
	for s.lru.Len() > c.perShard {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.byF, oldest.Value.(*cacheEntry).fp)
		c.evictions.Add(1)
	}
}

// release frees the in-flight slot without storing anything (canceled or
// journaled jobs).
func (c *resultCache) release(fp string) { c.complete(fp, nil) }

// fingerprints lists every cached fingerprint across shards, sorted.
func (c *resultCache) fingerprints() []string {
	var fps []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for fp := range s.byF {
			fps = append(fps, fp)
		}
		s.mu.Unlock()
	}
	sort.Strings(fps)
	return fps
}

// size returns the cached-entry count across shards.
func (c *resultCache) size() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(s.lru.Len())
		s.mu.Unlock()
	}
	return n
}
