package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// maxSpecBody bounds a submission body; specs are a few hundred bytes of
// JSON, so a megabyte is already generous.
const maxSpecBody = 1 << 20

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec specEnvelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec.Spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: the queue is bounded by design and
		// the client should come back.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case st.Cached || st.Deduped:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleEvents streams a job's progress as server-sent events. The stream
// replays history from ?after=<seq> (default: the beginning), follows the
// live run, and closes after the terminal event — so `curl -N` on a job
// shows queued → started → one window per SampleEvery cycles → done.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	seq := 0
	if after := r.URL.Query().Get("after"); after != "" {
		n, err := strconv.Atoi(after)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad after cursor"})
			return
		}
		seq = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for {
		events, changed := j.eventsAfter(seq)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			seq = ev.Seq + 1
			if ev.At.Terminal() {
				fl.Flush()
				return
			}
		}
		fl.Flush()
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleCache lists the cached fingerprints, one per line in sorted order.
// Plain text on purpose: the cluster chaos job asserts single-copy cache
// semantics with `curl node*/v1/cache | sort | uniq -d` and nothing else.
func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, fp := range s.CachedFingerprints() {
		fmt.Fprintln(w, fp)
	}
}

// handleMetrics renders the registry snapshot as plain text, one
// "name value" line per metric in sorted key order — Snapshot.Keys
// guarantees scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, k := range snap.Keys() {
		fmt.Fprintf(w, "%s %d\n", k, snap.Vals[k])
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
