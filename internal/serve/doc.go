// Package serve turns the one-shot simulation harness into a long-lived
// HTTP/JSON service: rcserved accepts chip.Spec submissions, runs them on
// a bounded worker pool with the same exp.Policy retry/timeout semantics
// the CLI sweeps use, deduplicates and memoizes results through a sharded
// LRU cache keyed by chip.Spec.Fingerprint, and streams per-window
// progress (Spec.SampleEvery metrics deltas) over server-sent events.
//
// Design-space exploration is profiling-run dominated: thousands of
// near-duplicate spec evaluations, which is exactly the workload admission
// control plus result caching wins at. The queue is bounded and applies
// backpressure (429 + Retry-After when full); shutdown is graceful —
// in-flight runs finish or are cancelled through the chip.RunCtx context
// plumbing, and jobs that never produced a result are drained to a journal
// that a restarted server replays.
//
// Endpoints:
//
//	POST /v1/jobs             submit a chip.Spec; 202 queued, 200 cached/deduped
//	GET  /v1/jobs/{id}        job status, including the Results when done
//	GET  /v1/jobs/{id}/events server-sent events: queued|started|window|done|failed|canceled
//	GET  /metrics             registry snapshot, text lines in sorted key order
//	GET  /healthz             liveness/readiness (503 while draining)
//	GET  /debug/pprof/        the standard profiling handlers
package serve
