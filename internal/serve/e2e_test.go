// End-to-end tests for the simulation service: a real Server behind a real
// HTTP listener, driven through the same Client rcsweep -remote uses. These
// encode the PR's acceptance criteria — duplicate submissions are served
// from the cache without a second simulation, shutdown journals unfinished
// jobs and a restarted server replays them, and a fault-injected run is
// retried per policy and surfaces as a structured error rather than a
// server crash.
package serve_test

import (
	"bufio"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/serve"
	"reactivenoc/internal/workload"
)

func quickSpec(t *testing.T, variant string, seed uint64) chip.Spec {
	t.Helper()
	v, ok := config.ByName(variant)
	if !ok {
		t.Fatalf("unknown variant %s", variant)
	}
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 200
	spec.MeasureOps = 500
	spec.Seed = seed
	return spec
}

// testService stands up a Server behind httptest and tears both down.
func testService(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	})
	return srv, serve.NewClient(hs.URL)
}

// TestE2ECacheHitSkipsSimulation: the duplicate of a completed spec is
// served from the cache — serve/cache_hits increments and serve/runs does
// not, proving no worker touched it.
func TestE2ECacheHitSkipsSimulation(t *testing.T) {
	_, cl := testService(t, serve.Config{Workers: 2})
	ctx := context.Background()
	spec := quickSpec(t, "Complete_NoAck", 1)

	res, err := cl.Run(ctx, spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("first run measured nothing")
	}
	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	if !st.Cached || st.State != serve.StateDone {
		t.Fatalf("duplicate submission not served from cache: %+v", st)
	}
	if st.Result == nil || st.Result.Cycles != res.Cycles {
		t.Fatal("cached submission carries no (or different) results")
	}

	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after["serve/runs"] != before["serve/runs"] {
		t.Fatalf("cache hit burned a worker: runs %d -> %d",
			before["serve/runs"], after["serve/runs"])
	}
	if after["serve/cache_hits"] != before["serve/cache_hits"]+1 {
		t.Fatalf("serve/cache_hits %d -> %d, want +1",
			before["serve/cache_hits"], after["serve/cache_hits"])
	}
}

// TestE2EJournalReplay: shutdown with queued jobs writes them to the
// journal; a new server on the same path replays them to completion under
// their original ids.
func TestE2EJournalReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "rcserved.journal")

	// First server: accept jobs but never start workers, so both stay
	// queued — the SIGTERM-with-queued-jobs scenario.
	s1, err := serve.New(serve.Config{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	specs := []chip.Spec{quickSpec(t, "Baseline", 11), quickSpec(t, "Complete_NoAck", 11)}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := s1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("shutdown left no journal: %v", err)
	}

	// Second server on the same journal path replays the backlog.
	_, cl := testService(t, serve.Config{Workers: 2, Journal: journal})
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m["serve/journal_replayed"] != int64(len(ids)) {
		t.Fatalf("serve/journal_replayed = %d, want %d", m["serve/journal_replayed"], len(ids))
	}
	for _, id := range ids {
		st, err := cl.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != serve.StateDone {
			t.Fatalf("replayed job %s finished %s (%v)", id, st.State, st.Error)
		}
	}
	// The journal was consumed: a third server sees nothing to replay.
	if entriesLeft, _ := os.ReadFile(journal); len(entriesLeft) != 0 {
		t.Fatalf("journal not consumed after replay: %q", entriesLeft)
	}
}

// TestE2EFaultRetrySurfacesStructuredError: a deterministically failing
// run (stalled link caught by the watchdog, both seeds) is retried per the
// policy and lands as a structured job error; the server keeps serving.
func TestE2EFaultRetrySurfacesStructuredError(t *testing.T) {
	_, cl := testService(t, serve.Config{Workers: 2, Policy: exp.Policy{Retry: true}})
	ctx := context.Background()

	spec := quickSpec(t, "Complete_NoAck", 1)
	spec.WarmupOps = 1000
	spec.MeasureOps = 3000
	spec.Audit = true
	spec.Fault = &fault.Plan{Class: fault.StallLink, After: 2000}
	spec.WatchdogStall = 3000

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != serve.StateFailed {
		t.Fatalf("fault-injected job finished %s, want failed", st.State)
	}
	if !st.Retried {
		t.Fatal("failed job was not retried under the alternate seed")
	}
	if st.Error == nil || st.Error.Phase == "" || st.Error.Msg == "" {
		t.Fatalf("failure is not a structured run error: %+v", st.Error)
	}
	if st.RetryError == nil {
		t.Fatal("retry outcome missing from the job status")
	}

	// The client path surfaces the same structured error type.
	if _, err := cl.Run(ctx, spec); err == nil {
		t.Fatal("Run returned no error for a failed job")
	} else if re := chip.AsRunError(err); re == nil {
		t.Fatalf("Run error is not a *chip.RunError: %v", err)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["serve/jobs_failed"] == 0 || m["serve/jobs_retried"] == 0 {
		t.Fatalf("failure metrics not recorded: %v", m)
	}

	// Not a crash: a healthy spec still runs to completion.
	if res, err := cl.Run(ctx, quickSpec(t, "Baseline", 2)); err != nil || res == nil {
		t.Fatalf("server unhealthy after fault-injected failure: %v", err)
	}
}

// TestE2EEventStreamOrder: the SSE stream for a sampled run is
// queued → started → window… → done, and the stream closes itself after
// the terminal event.
func TestE2EEventStreamOrder(t *testing.T) {
	srv, cl := testService(t, serve.Config{Workers: 1})
	ctx := context.Background()

	spec := quickSpec(t, "Complete_NoAck", 7)
	spec.SampleEvery = 200

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// Stream the full history; the handler terminates after "done".
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(types) < 4 {
		t.Fatalf("event stream too short: %v", types)
	}
	if types[0] != "queued" || types[1] != "started" || types[len(types)-1] != "done" {
		t.Fatalf("stream order wrong: %v", types)
	}
	windows := 0
	for _, ty := range types[2 : len(types)-1] {
		if ty != "window" {
			t.Fatalf("unexpected mid-stream event %q in %v", ty, types)
		}
		windows++
	}
	if windows == 0 {
		t.Fatalf("sampled run streamed no windows: %v", types)
	}

	// Resume cursor: ?after= replays only the tail.
	resp2, err := hs.Client().Get(hs.URL + "/v1/jobs/" + st.ID + "/events?after=" +
		strconv.Itoa(len(types)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tail []string
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		if ev, ok := strings.CutPrefix(sc2.Text(), "event: "); ok {
			tail = append(tail, ev)
		}
	}
	if len(tail) != 1 || tail[0] != "done" {
		t.Fatalf("after-cursor resume streamed %v, want [done]", tail)
	}
}

// TestE2EBackpressureHTTP: a full queue answers 429 with Retry-After, and
// the client Run absorbs it rather than failing the sweep cell.
func TestE2EBackpressureHTTP(t *testing.T) {
	// One worker, depth-1 queue, and no worker draining it yet — submit
	// three distinct specs fast enough that one lands on a full queue.
	srv, err := serve.New(serve.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := serve.NewClient(hs.URL)
	ctx := context.Background()

	if _, err := cl.Submit(ctx, quickSpec(t, "Baseline", 21)); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(ctx, quickSpec(t, "Baseline", 22))
	if err == nil {
		t.Fatal("overflow submission was not rejected")
	}
	if !strings.Contains(err.Error(), "retry after") {
		t.Fatalf("overflow error is not backpressure-shaped: %v", err)
	}

	// Start the pool: the queued job completes and Run rides out the 429.
	srv.Start()
	if _, err := cl.Run(ctx, quickSpec(t, "Baseline", 22)); err != nil {
		t.Fatalf("Run did not absorb backpressure: %v", err)
	}
	ctx2, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx2); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
