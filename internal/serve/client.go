package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"reactivenoc/internal/chip"
)

// specEnvelope is the submission body: the spec rides under one key so the
// wire format has room to grow (priorities, callbacks) without breaking
// old clients.
type specEnvelope struct {
	Spec chip.Spec `json:"spec"`
}

// Client talks to an rcserved instance. Its Run method has the same shape
// as chip.RunCtx, so it plugs straight into exp.Policy.Run and turns every
// existing sweep into a service client.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server base URL ("http://host:port").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// retryAfterError reports server backpressure (429/503) and how long the
// server asked us to back off.
type retryAfterError struct {
	status int
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("serve: server busy (HTTP %d), retry after %v", e.status, e.after)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		after := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				after = time.Duration(n) * time.Second
			}
		}
		return &retryAfterError{status: resp.StatusCode, after: after}
	default:
		var ae apiError
		_ = json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = resp.Status
		}
		return fmt.Errorf("serve: %s %s: %s", method, path, ae.Error)
	}
}

// Submit posts one spec; backpressure surfaces as a retryable error that
// Run absorbs.
func (c *Client) Submit(ctx context.Context, spec chip.Spec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", specEnvelope{Spec: spec}, &st)
	return st, err
}

// Job fetches a job's status, including the Results when done.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	interval := 10 * time.Millisecond
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
		if interval < 250*time.Millisecond {
			interval *= 2
		}
	}
}

// Run submits the spec and blocks for its results — the remote equivalent
// of chip.RunCtx, honoring backpressure by waiting out Retry-After. A
// failed run comes back as the server's structured *chip.RunError, so
// exp's failure reports look the same whether the run was local or remote.
func (c *Client) Run(ctx context.Context, spec chip.Spec) (*chip.Results, error) {
	var st JobStatus
	for {
		var err error
		st, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		ra, ok := err.(*retryAfterError)
		if !ok {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(ra.after):
		}
	}
	if !st.State.Terminal() {
		var err error
		st, err = c.Wait(ctx, st.ID)
		if err != nil {
			return nil, err
		}
	}
	switch st.State {
	case StateDone:
		if st.Result == nil {
			// Terminal submit responses carry the result only on cache
			// hits; fetch the full record otherwise.
			full, err := c.Job(ctx, st.ID)
			if err != nil {
				return nil, err
			}
			st = full
		}
		if st.Result == nil {
			return nil, fmt.Errorf("serve: job %s done but carries no result", st.ID)
		}
		return st.Result, nil
	case StateFailed:
		if st.Error != nil {
			return nil, st.Error
		}
		return nil, fmt.Errorf("serve: job %s failed without a structured error", st.ID)
	default:
		return nil, fmt.Errorf("serve: job %s was %s by server shutdown; resubmit after restart", st.ID, st.State)
	}
}

// Metrics scrapes /metrics into a name→value map.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: GET /metrics: %s", resp.Status)
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out, sc.Err()
}
