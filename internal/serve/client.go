package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"reactivenoc/internal/chip"
)

// specEnvelope is the submission body: the spec rides under one key so the
// wire format has room to grow (priorities, callbacks) without breaking
// old clients.
type specEnvelope struct {
	Spec chip.Spec `json:"spec"`
}

// Client talks to an rcserved instance. Its Run method has the same shape
// as chip.RunCtx, so it plugs straight into exp.Policy.Run and turns every
// existing sweep into a service client.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server base URL ("http://host:port").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// retryAfterError reports server backpressure (429/503) and how long the
// server asked us to back off.
type retryAfterError struct {
	status int
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("serve: server busy (HTTP %d), retry after %v", e.status, e.after)
}

// IsBackpressure reports whether err is a 429/503 backpressure response
// and, if so, the server's Retry-After hint.
func IsBackpressure(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// StatusError is a non-backpressure HTTP failure from the server. Callers
// (the cluster client) use the code to tell a rejected request (4xx — the
// job's fault, don't re-dispatch) from a broken node (everything else).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		after := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				after = time.Duration(n) * time.Second
			}
		}
		return &retryAfterError{status: resp.StatusCode, after: after}
	default:
		var ae apiError
		_ = json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = resp.Status
		}
		return &StatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("%s %s: %s", method, path, ae.Error)}
	}
}

// Submit posts one spec; backpressure surfaces as a retryable error that
// Run absorbs.
func (c *Client) Submit(ctx context.Context, spec chip.Spec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", specEnvelope{Spec: spec}, &st)
	return st, err
}

// Job fetches a job's status, including the Results when done.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	interval := 10 * time.Millisecond
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
		if interval < 250*time.Millisecond {
			interval *= 2
		}
	}
}

// backpressureMaxWait bounds the exponential growth of backpressure
// sleeps; the jitter can stretch one sleep to at most 1.5x this.
const backpressureMaxWait = 15 * time.Second

// backpressureWait derives the attempt'th backpressure sleep from the
// server's Retry-After hint: bounded exponential growth with full jitter
// in [w/2, 3w/2), so N sweep workers rejected by the same recovering node
// spread their retries out instead of stampeding it in lockstep.
func backpressureWait(hint time.Duration, attempt int) time.Duration {
	w := hint
	if w <= 0 {
		w = time.Second
	}
	for i := 1; i < attempt && w < backpressureMaxWait; i++ {
		w *= 2
	}
	if w > backpressureMaxWait {
		w = backpressureMaxWait
	}
	return w/2 + time.Duration(rand.Int63n(int64(w)))
}

// Run submits the spec and blocks for its results — the remote equivalent
// of chip.RunCtx, honoring backpressure by waiting out Retry-After with
// jittered, bounded-exponential sleeps. The total wait is capped by the
// caller's context deadline: when the next sleep cannot fit before the
// deadline, Run gives up immediately with the backpressure error instead
// of burning the remaining budget asleep. A failed run comes back as the
// server's structured *chip.RunError, so exp's failure reports look the
// same whether the run was local or remote.
func (c *Client) Run(ctx context.Context, spec chip.Spec) (*chip.Results, error) {
	var st JobStatus
	for attempt := 1; ; attempt++ {
		var err error
		st, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		ra, ok := err.(*retryAfterError)
		if !ok {
			return nil, err
		}
		wait := backpressureWait(ra.after, attempt)
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
			return nil, fmt.Errorf("serve: backpressure outlasted the context deadline after %d attempts: %w", attempt, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
	if !st.State.Terminal() {
		var err error
		st, err = c.Wait(ctx, st.ID)
		if err != nil {
			return nil, err
		}
	}
	switch st.State {
	case StateDone:
		if st.Result == nil {
			// Terminal submit responses carry the result only on cache
			// hits; fetch the full record otherwise.
			full, err := c.Job(ctx, st.ID)
			if err != nil {
				return nil, err
			}
			st = full
		}
		if st.Result == nil {
			return nil, fmt.Errorf("serve: job %s done but carries no result", st.ID)
		}
		return st.Result, nil
	case StateFailed:
		if st.Error != nil {
			return nil, st.Error
		}
		return nil, fmt.Errorf("serve: job %s failed without a structured error", st.ID)
	default:
		return nil, fmt.Errorf("serve: job %s was %s by server shutdown; resubmit after restart", st.ID, st.State)
	}
}

// Follow streams a job's events, starting at cursor after (the Seq of the
// first event wanted), invoking fn for each. It returns the next cursor —
// one past the last delivered Seq. A nil error means the stream reached a
// terminal event; any other outcome (the node died mid-stream, fn bailed)
// returns the cursor to resume from. Because a journal-replayed job
// re-runs deterministically under its original id, resuming with that
// cursor on the replacement node yields exactly the events the broken
// stream never delivered — no window is ever seen twice.
func (c *Client) Follow(ctx context.Context, id string, after int, fn func(Event) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", c.base, id, after), nil)
	if err != nil {
		return after, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return after, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		_ = json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = resp.Status
		}
		return after, &StatusError{Code: resp.StatusCode, Msg: "GET events: " + ae.Error}
	}
	next := after
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return next, fmt.Errorf("serve: bad event frame: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return next, err
			}
		}
		next = ev.Seq + 1
		if ev.At.Terminal() {
			return next, nil
		}
	}
	if err := sc.Err(); err != nil {
		return next, err
	}
	return next, io.ErrUnexpectedEOF
}

// CachedFingerprints scrapes /v1/cache: the node's cached result
// fingerprints, sorted.
func (c *Client) CachedFingerprints(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cache", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: GET /v1/cache: %s", resp.Status)
	}
	var fps []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if fp := strings.TrimSpace(sc.Text()); fp != "" {
			fps = append(fps, fp)
		}
	}
	return fps, sc.Err()
}

// Metrics scrapes /metrics into a name→value map.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: GET /metrics: %s", resp.Status)
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out, sc.Err()
}
