// Package fault implements a deterministic, seedable fault injector for
// chaos-testing the simulator's corruption detectors. An Injector plugs
// into the network fabric as a noc.FaultHook and into the circuit manager
// as a core.FaultHook; each armed Plan corrupts a bounded number of
// hardware events of one class, and every injection is logged so tests can
// assert that the audits, the watchdog, or a contained invariant panic
// caught it — and that nothing escaped silently into the results.
package fault

import (
	"fmt"

	"reactivenoc/internal/core"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// Class enumerates the injectable corruption classes.
type Class uint8

const (
	// FlipBuiltBit clears the built (B) bit of a freshly installed circuit
	// entry: the NI registry still advertises the circuit, so the reply
	// arrives expecting a reservation the router no longer has.
	FlipBuiltBit Class = iota
	// DropUndoToken swallows a circuit-undo token mid-walk, stranding the
	// rest of the teardown and leaking the downstream entries.
	DropUndoToken
	// TruncateWindow collapses a timed entry's reservation window so it
	// expires before the scheduled reply can arrive.
	TruncateWindow
	// WithholdCredit suppresses one buffer-credit return, permanently
	// shrinking an upstream credit counter.
	WithholdCredit
	// StallLink freezes one flit on a link; FIFO delivery stalls every
	// later flit behind it, starving the consumers downstream.
	StallLink

	// NumClasses bounds the enumeration.
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case FlipBuiltBit:
		return "flip-built-bit"
	case DropUndoToken:
		return "drop-undo-token"
	case TruncateWindow:
		return "truncate-window"
	case WithholdCredit:
		return "withhold-credit"
	case StallLink:
		return "stall-link"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Plan configures the faults one run injects. The zero value of every
// field is the permissive default: fire immediately, once, anywhere.
type Plan struct {
	// Class selects the corruption to inject.
	Class Class
	// Seed varies which eligible hardware event fires for a fixed spec:
	// a non-zero seed skips a seed-derived number of eligible events
	// first (0 = fire on the first eligible event).
	Seed uint64
	// After arms the injector: no fault fires before this cycle.
	After sim.Cycle
	// Count caps the number of injections (<= 0 means one).
	Count int
	// OnRouter restricts injection to router id OnRouter-1 (0 = any).
	OnRouter int
	// Stall is the extra wire delay of StallLink faults in cycles
	// (<= 0 means effectively forever).
	Stall sim.Cycle
}

// Event logs one injected fault.
type Event struct {
	Class  Class
	Router mesh.NodeID
	Cycle  sim.Cycle
	Detail string
}

// String renders the event for failure reports.
func (e Event) String() string {
	return fmt.Sprintf("cycle %d router %d: %s (%s)", e.Cycle, e.Router, e.Class, e.Detail)
}

// Injector deterministically corrupts hardware events per its Plan. It
// implements both noc.FaultHook and core.FaultHook; wire it with
// Network.SetFaultHook and Manager.SetFaultHook.
type Injector struct {
	plan   Plan
	left   int
	skip   int
	events []Event
}

var (
	_ noc.FaultHook  = (*Injector)(nil)
	_ core.FaultHook = (*Injector)(nil)
)

// New builds an injector for the plan.
func New(p Plan) *Injector {
	if p.Count <= 0 {
		p.Count = 1
	}
	j := &Injector{plan: p, left: p.Count}
	// A non-zero seed picks which of the eligible events fire by skipping
	// a small deterministic prefix of them.
	if p.Seed != 0 {
		j.skip = int(sim.NewRNG(p.Seed).Uint64() % 4)
	}
	return j
}

// Events returns the log of injected faults, in injection order.
func (j *Injector) Events() []Event { return j.events }

// Injected returns how many faults have fired.
func (j *Injector) Injected() int { return len(j.events) }

// fire decides whether an eligible event of the given class at the given
// router corrupts, logging it when it does.
func (j *Injector) fire(class Class, router mesh.NodeID, now sim.Cycle, detail string) bool {
	if class != j.plan.Class || j.left <= 0 || now < j.plan.After {
		return false
	}
	if j.plan.OnRouter > 0 && int(router) != j.plan.OnRouter-1 {
		return false
	}
	if j.skip > 0 {
		j.skip--
		return false
	}
	j.left--
	j.events = append(j.events, Event{Class: class, Router: router, Cycle: now, Detail: detail})
	return true
}

// DropUndo implements noc.FaultHook.
func (j *Injector) DropUndo(id mesh.NodeID, tok *noc.UndoToken, now sim.Cycle) bool {
	return j.fire(DropUndoToken, id, now,
		fmt.Sprintf("undo token for circuit (%d,%#x) dropped", tok.Dest, tok.Block))
}

// WithholdCredit implements noc.FaultHook.
func (j *Injector) WithholdCredit(id mesh.NodeID, in mesh.Dir, now sim.Cycle) bool {
	return j.fire(WithholdCredit, id, now,
		fmt.Sprintf("credit through input %v withheld", in))
}

// StallFlit implements noc.FaultHook.
func (j *Injector) StallFlit(id mesh.NodeID, out mesh.Dir, now sim.Cycle) sim.Cycle {
	if !j.fire(StallLink, id, now, fmt.Sprintf("flit on output %v stalled", out)) {
		return 0
	}
	stall := j.plan.Stall
	if stall <= 0 {
		stall = 1 << 40 // effectively forever
	}
	return stall
}

// FlipBuiltBit implements core.FaultHook.
func (j *Injector) FlipBuiltBit(id mesh.NodeID, now sim.Cycle) bool {
	return j.fire(FlipBuiltBit, id, now, "built bit of fresh entry cleared")
}

// TruncateWindow implements core.FaultHook.
func (j *Injector) TruncateWindow(id mesh.NodeID, start, end, now sim.Cycle) (sim.Cycle, bool) {
	if !j.fire(TruncateWindow, id, now,
		fmt.Sprintf("window [%d,%d] truncated to end at %d", start, end, now)) {
		return 0, false
	}
	return now, true // the entry expires before its reply can arrive
}
