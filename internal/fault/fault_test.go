package fault

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		FlipBuiltBit:   "flip-built-bit",
		DropUndoToken:  "drop-undo-token",
		TruncateWindow: "truncate-window",
		WithholdCredit: "withhold-credit",
		StallLink:      "stall-link",
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Errorf("class %d renders %q, want %q", c, c.String(), want[c])
		}
	}
	if Class(200).String() != "class(200)" {
		t.Errorf("out-of-range class renders %q", Class(200).String())
	}
}

func TestInjectorFiresOnceByDefault(t *testing.T) {
	j := New(Plan{Class: WithholdCredit})
	fired := 0
	for i := 0; i < 20; i++ {
		if j.WithholdCredit(mesh.NodeID(i), mesh.East, 100) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if j.Injected() != 1 || len(j.Events()) != 1 {
		t.Fatalf("event log has %d entries", len(j.Events()))
	}
	ev := j.Events()[0]
	if ev.Class != WithholdCredit || ev.Cycle != 100 {
		t.Fatalf("bad event %+v", ev)
	}
	if ev.String() == "" {
		t.Fatal("empty event rendering")
	}
}

func TestInjectorCount(t *testing.T) {
	j := New(Plan{Class: DropUndoToken, Count: 3})
	fired := 0
	for i := 0; i < 20; i++ {
		if j.DropUndo(0, &noc.UndoToken{}, 1) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestInjectorAfterGate(t *testing.T) {
	j := New(Plan{Class: FlipBuiltBit, After: 500})
	if j.FlipBuiltBit(0, 499) {
		t.Fatal("fired before the After gate")
	}
	if !j.FlipBuiltBit(0, 500) {
		t.Fatal("did not fire at the After gate")
	}
}

func TestInjectorRouterFilter(t *testing.T) {
	j := New(Plan{Class: FlipBuiltBit, OnRouter: 4})
	if j.FlipBuiltBit(0, 1) || j.FlipBuiltBit(7, 1) {
		t.Fatal("fired on the wrong router")
	}
	if !j.FlipBuiltBit(3, 1) {
		t.Fatal("did not fire on router 3 (OnRouter is 1-based)")
	}
}

func TestInjectorSeedVariesTarget(t *testing.T) {
	// Different seeds must be able to pick different eligible events, and
	// the same seed must always pick the same one.
	pick := func(seed uint64) int {
		j := New(Plan{Class: WithholdCredit, Seed: seed})
		for i := 0; i < 20; i++ {
			if j.WithholdCredit(mesh.NodeID(i), mesh.West, 1) {
				return i
			}
		}
		return -1
	}
	if pick(1) != pick(1) {
		t.Fatal("same seed picked different events")
	}
	first := pick(0)
	varied := false
	for seed := uint64(1); seed < 16; seed++ {
		if pick(seed) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("seed never varied the injection target")
	}
}

func TestTruncateWindowCollapsesToNow(t *testing.T) {
	j := New(Plan{Class: TruncateWindow})
	end, ok := j.TruncateWindow(2, 100, 900, 150)
	if !ok || end != 150 {
		t.Fatalf("got (%d, %v), want window end collapsed to now=150", end, ok)
	}
}

func TestStallFlitUsesPlanStall(t *testing.T) {
	j := New(Plan{Class: StallLink, Stall: 77})
	if d := j.StallFlit(1, mesh.East, 10); d != 77 {
		t.Fatalf("stall %d, want 77", d)
	}
	// Exhausted budget -> no further stalls.
	if d := j.StallFlit(1, mesh.East, 11); d != 0 {
		t.Fatalf("stall %d after budget exhausted, want 0", d)
	}
	j2 := New(Plan{Class: StallLink})
	if d := j2.StallFlit(1, mesh.East, 10); d != 1<<40 {
		t.Fatalf("default stall %d, want effectively forever", d)
	}
}
