// Chaos suite: every fault class the injector can produce must be caught
// by one of the simulator's detectors — a contained invariant panic, the
// deadlock watchdog, or the quiescence audits — within a bounded number of
// cycles, and the failure must surface as an actionable *chip.RunError.
// A run that absorbs an injected corruption and still reports results
// would be a silent escape; these tests exist to make that impossible.
package fault_test

import (
	"strings"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/workload"
)

// chaosSpec is a short 16-core run with the audits armed, so corruption
// that survives to quiescence is still caught.
func chaosSpec(t *testing.T, variant string, w workload.Profile) chip.Spec {
	t.Helper()
	v, ok := config.ByName(variant)
	if !ok {
		t.Fatalf("unknown variant %s", variant)
	}
	spec := chip.DefaultSpec(config.Chip16(), v, w)
	spec.WarmupOps = 1000
	spec.MeasureOps = 3000
	spec.Audit = true
	return spec
}

// mustDetect runs the armed spec and asserts the fault was injected AND
// detected: a structured RunError naming the failing spec, never a clean
// result carrying corrupted measurements.
func mustDetect(t *testing.T, spec chip.Spec) *chip.RunError {
	t.Helper()
	res, err := chip.Run(spec)
	if err == nil {
		if res != nil && len(res.Faults) > 0 {
			t.Fatalf("silent escape: %d injected %v faults produced a clean result",
				len(res.Faults), spec.Fault.Class)
		}
		t.Fatalf("%v fault never fired: tune the plan (seed/count/workload)", spec.Fault.Class)
	}
	re := chip.AsRunError(err)
	if re == nil {
		t.Fatalf("error is not a *chip.RunError: %v", err)
	}
	if len(re.Faults) == 0 {
		t.Fatalf("run failed but the fault log is empty: %v", re)
	}
	if re.Phase == "" || re.Msg == "" {
		t.Fatalf("failure lacks phase/message: %+v", re)
	}
	if !strings.Contains(re.Fingerprint(), spec.Chip.Name) ||
		!strings.Contains(re.Fingerprint(), spec.Variant.Name) {
		t.Fatalf("fingerprint %q does not name the failing spec", re.Fingerprint())
	}
	return re
}

func TestChaosFlipBuiltBit(t *testing.T) {
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.FlipBuiltBit}
	re := mustDetect(t, spec)
	if re.Faults[0].Class != fault.FlipBuiltBit {
		t.Fatalf("wrong fault logged: %v", re.Faults[0])
	}
}

func TestChaosDropUndoToken(t *testing.T) {
	// Scaled-up traffic makes reservation conflicts (and so undo walks)
	// frequent enough that one token can be swallowed mid-walk.
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro().Scaled(8))
	spec.Fault = &fault.Plan{Class: fault.DropUndoToken}
	re := mustDetect(t, spec)
	if re.Phase != "audit" && !re.Panicked {
		t.Logf("caught by %s phase: %s", re.Phase, re.Msg)
	}
}

func TestChaosTruncateWindow(t *testing.T) {
	spec := chaosSpec(t, "SlackDelay_1_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.TruncateWindow, Count: 2}
	mustDetect(t, spec)
}

func TestChaosWithholdCredit(t *testing.T) {
	// Credit conservation is variant-independent: even the circuit-free
	// baseline must notice a vanished credit at quiescence.
	spec := chaosSpec(t, "Baseline", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.WithholdCredit}
	re := mustDetect(t, spec)
	if re.Phase != "audit" {
		t.Logf("withheld credit caught earlier than the audit: %s/%s", re.Phase, re.Msg)
	}
}

func TestChaosStallLink(t *testing.T) {
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.StallLink, After: 2000}
	spec.WatchdogStall = 3000 // don't wait the production 50k cycles
	re := mustDetect(t, spec)
	if !strings.Contains(re.Msg, "no progress") && !strings.Contains(re.Msg, "did not finish") {
		t.Fatalf("stalled link not caught by the watchdog: %s", re.Msg)
	}
	if re.Diag == "" {
		t.Fatal("watchdog failure lacks the network state dump")
	}
}

// TestChaosEveryClassDetected sweeps the whole enumeration so a future
// class cannot be added without a detection story.
func TestChaosEveryClassDetected(t *testing.T) {
	plans := map[fault.Class]chip.Spec{}
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		var spec chip.Spec
		switch c {
		case fault.FlipBuiltBit:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.DropUndoToken:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro().Scaled(8))
			spec.Fault = &fault.Plan{Class: c}
		case fault.TruncateWindow:
			spec = chaosSpec(t, "SlackDelay_1_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c, Count: 2}
		case fault.WithholdCredit:
			spec = chaosSpec(t, "Baseline", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.StallLink:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c, After: 2000}
			spec.WatchdogStall = 3000
		default:
			t.Fatalf("fault class %v has no chaos scenario: add one", c)
		}
		plans[c] = spec
	}
	for c, spec := range plans {
		c, spec := c, spec
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			mustDetect(t, spec)
		})
	}
}
