// Chaos suite: every fault class the injector can produce must be caught
// by its *intended* detector — the named invariant oracle the verification
// suite maps it to (verify.OraclesFor), not merely the watchdog or a lucky
// panic — within a bounded number of cycles, and the failure must surface
// as an actionable *chip.RunError. A run that absorbs an injected
// corruption and still reports results would be a silent escape; these
// tests exist to make that impossible.
package fault_test

import (
	"strings"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/verify"
	"reactivenoc/internal/workload"
)

// chaosSpec is a short 16-core run with the audits armed and the oracle
// suite checking every cycle, so a corruption is attributed to its
// detector on the boundary it becomes observable.
func chaosSpec(t *testing.T, variant string, w workload.Profile) chip.Spec {
	t.Helper()
	v, ok := config.ByName(variant)
	if !ok {
		t.Fatalf("unknown variant %s", variant)
	}
	spec := chip.DefaultSpec(config.Chip16(), v, w)
	spec.WarmupOps = 1000
	spec.MeasureOps = 3000
	spec.Audit = true
	spec.Verify = true
	spec.VerifyEvery = 1
	return spec
}

// mustDetectBy runs the armed spec and asserts the fault was caught by one
// of the named oracles — the detection-regression gate on top of
// mustDetect's silent-escape gate.
func mustDetectBy(t *testing.T, spec chip.Spec, oracles []string) *chip.RunError {
	t.Helper()
	re := mustDetect(t, spec)
	for _, want := range oracles {
		if re.Oracle == want {
			return re
		}
	}
	t.Fatalf("%v fault caught by %q (phase %s: %s), want oracle in %v",
		spec.Fault.Class, re.Oracle, re.Phase, re.Msg, oracles)
	return nil
}

// mustDetect runs the armed spec and asserts the fault was injected AND
// detected: a structured RunError naming the failing spec, never a clean
// result carrying corrupted measurements.
func mustDetect(t *testing.T, spec chip.Spec) *chip.RunError {
	t.Helper()
	res, err := chip.Run(spec)
	if err == nil {
		if res != nil && len(res.Faults) > 0 {
			t.Fatalf("silent escape: %d injected %v faults produced a clean result",
				len(res.Faults), spec.Fault.Class)
		}
		t.Fatalf("%v fault never fired: tune the plan (seed/count/workload)", spec.Fault.Class)
	}
	re := chip.AsRunError(err)
	if re == nil {
		t.Fatalf("error is not a *chip.RunError: %v", err)
	}
	if len(re.Faults) == 0 {
		t.Fatalf("run failed but the fault log is empty: %v", re)
	}
	if re.Phase == "" || re.Msg == "" {
		t.Fatalf("failure lacks phase/message: %+v", re)
	}
	if !strings.Contains(re.Fingerprint(), spec.Chip.Name) ||
		!strings.Contains(re.Fingerprint(), spec.Variant.Name) {
		t.Fatalf("fingerprint %q does not name the failing spec", re.Fingerprint())
	}
	return re
}

func TestChaosFlipBuiltBit(t *testing.T) {
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.FlipBuiltBit}
	re := mustDetectBy(t, spec, verify.OraclesFor(fault.FlipBuiltBit))
	if re.Faults[0].Class != fault.FlipBuiltBit {
		t.Fatalf("wrong fault logged: %v", re.Faults[0])
	}
}

func TestChaosDropUndoToken(t *testing.T) {
	// Scaled-up traffic makes reservation conflicts (and so undo walks)
	// frequent enough that one token can be swallowed mid-walk.
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro().Scaled(8))
	spec.Fault = &fault.Plan{Class: fault.DropUndoToken}
	mustDetectBy(t, spec, verify.OraclesFor(fault.DropUndoToken))
}

func TestChaosTruncateWindow(t *testing.T) {
	spec := chaosSpec(t, "SlackDelay_1_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.TruncateWindow, Count: 2}
	mustDetectBy(t, spec, verify.OraclesFor(fault.TruncateWindow))
}

func TestChaosWithholdCredit(t *testing.T) {
	// Credit conservation is variant-independent: even the circuit-free
	// baseline must notice a vanished credit, online and immediately.
	spec := chaosSpec(t, "Baseline", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.WithholdCredit}
	re := mustDetectBy(t, spec, verify.OraclesFor(fault.WithholdCredit))
	if re.Phase == "audit" {
		t.Errorf("withheld credit only surfaced at the end-of-run audit: %s", re.Msg)
	}
}

func TestChaosStallLink(t *testing.T) {
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro())
	spec.Fault = &fault.Plan{Class: fault.StallLink, After: 2000}
	spec.WatchdogStall = 3000 // don't wait the production 50k cycles
	re := mustDetectBy(t, spec, verify.OraclesFor(fault.StallLink))
	if re.Diag == "" {
		t.Fatal("stall failure lacks the network state dump")
	}
	if !strings.Contains(re.Msg, "no flit moved") {
		t.Fatalf("progress oracle message lacks the stall description: %s", re.Msg)
	}
}

// TestChaosWatchdogFallback proves the layered-defense story: with the
// oracle suite disarmed, a stalled link must still be caught — by the
// generic forward-progress watchdog, the pre-oracle behaviour.
func TestChaosWatchdogFallback(t *testing.T) {
	spec := chaosSpec(t, "Complete_NoAck", workload.Micro())
	spec.Verify = false
	spec.Fault = &fault.Plan{Class: fault.StallLink, After: 2000}
	spec.WatchdogStall = 3000
	re := mustDetect(t, spec)
	if re.Oracle != "" {
		t.Fatalf("oracle %q fired with Verify off", re.Oracle)
	}
	if !strings.Contains(re.Msg, "no progress") && !strings.Contains(re.Msg, "did not finish") {
		t.Fatalf("stalled link not caught by the watchdog: %s", re.Msg)
	}
}

// TestChaosSDM re-runs the fault classes with the SDM policy's lane-sliced
// fabric active: the detection story must survive per-lane circuit tables,
// lane-paced bypass and deferred teardown. TruncateWindow is structurally
// inapplicable — sdm rejects Timed, so no timed reservation ever exists to
// truncate — and is pinned as such so its absence here is a decision, not
// an oversight.
func TestChaosSDM(t *testing.T) {
	sdm, _ := config.ByName("SDM")
	if sdm.Opts.Timed {
		t.Fatal("SDM preset became timed: revisit the TruncateWindow exclusion")
	}
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		var spec chip.Spec
		switch c {
		case fault.FlipBuiltBit:
			spec = chaosSpec(t, "SDM", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.DropUndoToken:
			// Scaled-up traffic keeps the undo walks (lane releases travel
			// as undo credits under sdm too) frequent enough to swallow one.
			spec = chaosSpec(t, "SDM", workload.Micro().Scaled(8))
			spec.Fault = &fault.Plan{Class: c}
		case fault.TruncateWindow:
			continue // structurally N/A: sdm circuits are untimed
		case fault.WithholdCredit:
			spec = chaosSpec(t, "SDM", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.StallLink:
			spec = chaosSpec(t, "SDM", workload.Micro())
			spec.Fault = &fault.Plan{Class: c, After: 2000}
			spec.WatchdogStall = 3000
		default:
			t.Fatalf("fault class %v has no SDM chaos scenario: add one (or pin it N/A)", c)
		}
		c, spec := c, spec
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			mustDetectBy(t, spec, verify.OraclesFor(c))
		})
	}
}

// TestChaosEveryClassDetected sweeps the whole enumeration so a future
// class cannot be added without a detection story.
func TestChaosEveryClassDetected(t *testing.T) {
	plans := map[fault.Class]chip.Spec{}
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		var spec chip.Spec
		switch c {
		case fault.FlipBuiltBit:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.DropUndoToken:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro().Scaled(8))
			spec.Fault = &fault.Plan{Class: c}
		case fault.TruncateWindow:
			spec = chaosSpec(t, "SlackDelay_1_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c, Count: 2}
		case fault.WithholdCredit:
			spec = chaosSpec(t, "Baseline", workload.Micro())
			spec.Fault = &fault.Plan{Class: c}
		case fault.StallLink:
			spec = chaosSpec(t, "Complete_NoAck", workload.Micro())
			spec.Fault = &fault.Plan{Class: c, After: 2000}
			spec.WatchdogStall = 3000
		default:
			t.Fatalf("fault class %v has no chaos scenario: add one", c)
		}
		plans[c] = spec
	}
	for c, spec := range plans {
		c, spec := c, spec
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			if oracles := verify.OraclesFor(c); oracles != nil {
				mustDetectBy(t, spec, oracles)
			} else {
				t.Errorf("fault class %v has no oracle mapping: add one to verify.OraclesFor", c)
				mustDetect(t, spec)
			}
		})
	}
}
