// Package prof adds the standard Go profiling outputs — CPU profile,
// allocation profile and runtime execution trace — to a command's flag set,
// so every simulator binary feeds pprof and `go tool trace` with the same
// flags the toolchain's own tests use. The zero-allocation work in the
// network hot path was measured through exactly this wiring.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles holds the requested output paths (empty = off) and the open
// files of the in-flight collectors.
type Profiles struct {
	cpu, mem, trc string

	cpuFile, trcFile *os.File
}

// Flags registers -cpuprofile and -memprofile plus an execution-trace flag
// named traceFlag on the default flag set, before flag.Parse. The trace
// flag's name is a parameter because rcsim already uses -trace for the
// message-lifecycle trace.
func Flags(traceFlag string) *Profiles {
	p := &Profiles{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to `file`")
	flag.StringVar(&p.mem, "memprofile", "", "write an allocation profile to `file` at exit")
	flag.StringVar(&p.trc, traceFlag, "", "write a runtime execution trace to `file`")
	return p
}

// Start begins the requested CPU profile and execution trace. On error the
// collectors already running are stopped again.
func (p *Profiles) Start() error {
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: %w", err)
		}
		p.cpuFile = f
	}
	if p.trc != "" {
		f, err := os.Create(p.trc)
		if err == nil {
			if terr := trace.Start(f); terr != nil {
				f.Close()
				err = terr
			} else {
				p.trcFile = f
			}
		}
		if err != nil {
			p.Stop()
			return fmt.Errorf("prof: %w", err)
		}
	}
	return nil
}

// Stop ends the CPU profile and execution trace and, if requested, writes
// the allocation profile. Safe to call when nothing was started; the first
// error wins but every collector is still flushed.
func (p *Profiles) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = fmt.Errorf("prof: %w", err)
		}
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if p.trcFile != nil {
		trace.Stop()
		keep(p.trcFile.Close())
		p.trcFile = nil
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			keep(err)
			return first
		}
		// Collect garbage first so the heap profile shows retention, not
		// whatever the last cycle left unswept.
		runtime.GC()
		keep(pprof.WriteHeapProfile(f))
		keep(f.Close())
	}
	return first
}
