package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopWritesProfiles drives the full lifecycle against temp files
// and checks each collector left a non-empty artifact behind.
func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	p := &Profiles{
		cpu: filepath.Join(dir, "cpu.pprof"),
		mem: filepath.Join(dir, "mem.pprof"),
		trc: filepath.Join(dir, "exec.trace"),
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Some trivially profileable work.
	s := 0
	for i := 0; i < 1000; i++ {
		s += i
	}
	_ = s
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, f := range []string{p.cpu, p.mem, p.trc} {
		st, err := os.Stat(f)
		if err != nil {
			t.Errorf("missing profile %s: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

// TestStopWithoutStartIsSafe covers the error-path contract: commands call
// Stop unconditionally on the way out.
func TestStopWithoutStartIsSafe(t *testing.T) {
	var p Profiles
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop on zero Profiles: %v", err)
	}
}
