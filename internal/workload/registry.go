package workload

import (
	"fmt"
	"sync"

	"reactivenoc/internal/cache"
)

// The generator registry holds profiles registered by other packages —
// the adversarial/bursty suite in internal/tracefeed — so they resolve
// through ByName exactly like the built-in evaluation workloads and can be
// named by PhaseNext chains, sweep columns and CLI flags.
var registryState struct {
	mu     sync.Mutex
	byName map[string]Profile
	order  []string
}

// Register adds a generator profile to the workload registry under its
// Name. Registration is how the adversarial generators become first-class
// workload names: they appear in ByName, GeneratorNames and therefore in
// -workload flags, sweep columns and differ specs. Re-registering a name
// replaces the previous profile (tests overwrite freely); an empty name or
// a name colliding with a built-in workload panics — the built-in
// inventory is the paper's and stays authoritative.
func Register(p Profile) {
	if p.Name == "" {
		panic("workload: registering a nameless profile")
	}
	if p.Name == "micro" || p.Name == "mix" || builtinByName(p.Name) {
		panic(fmt.Sprintf("workload: %q is a built-in workload name", p.Name))
	}
	registryState.mu.Lock()
	defer registryState.mu.Unlock()
	if registryState.byName == nil {
		registryState.byName = map[string]Profile{}
	}
	if _, seen := registryState.byName[p.Name]; !seen {
		registryState.order = append(registryState.order, p.Name)
	}
	registryState.byName[p.Name] = p
}

// registered looks a name up in the generator registry.
func registered(name string) (Profile, bool) {
	registryState.mu.Lock()
	defer registryState.mu.Unlock()
	p, ok := registryState.byName[name]
	return p, ok
}

// GeneratorNames lists every registered generator profile, in
// registration order.
func GeneratorNames() []string {
	registryState.mu.Lock()
	defer registryState.mu.Unlock()
	return append([]string(nil), registryState.order...)
}

// builtinByName reports whether name is one of the paper's parallel apps.
func builtinByName(name string) bool {
	for _, p := range parallelProfiles() {
		if p.Name == name {
			return true
		}
	}
	return false
}

// RegionClass labels which of a profile's regions an address falls in —
// the address-region field of a trace record. The numeric values are part
// of the binary trace format (internal/tracefeed) and must not be
// reordered.
type RegionClass uint8

const (
	// RegionNone marks compute operations (no address).
	RegionNone RegionClass = iota
	// RegionHot is the L1-resident private region.
	RegionHot
	// RegionStream is the L2-resident streaming region.
	RegionStream
	// RegionCold is the never-warm region that reaches memory.
	RegionCold
	// RegionShared is the globally shared region.
	RegionShared
	// RegionOther is anything the profile does not claim (trace replays,
	// foreign address spaces).
	RegionOther
)

// String names the class for diagnostics.
func (rc RegionClass) String() string {
	switch rc {
	case RegionNone:
		return "none"
	case RegionHot:
		return "hot"
	case RegionStream:
		return "stream"
	case RegionCold:
		return "cold"
	case RegionShared:
		return "shared"
	default:
		return "other"
	}
}

// Classify maps an address of core coreID's stream onto the region it
// belongs to, plus a sharer hint (how widely the line is expected to be
// shared: 0 = private, 1 = read-shared region, 2 = contended shared-hot
// eighth). The trace recorder stores both with every record so a trace is
// analyzable without the profile that produced it.
func (p Profile) Classify(coreID int, a cache.Addr) (RegionClass, uint8) {
	if a >= sharedBase {
		hot := p.SharedLines / 8
		if hot < 1 {
			hot = 1
		}
		if a < sharedBase+cache.Addr(hot)*lineBytes {
			return RegionShared, 2
		}
		return RegionShared, 1
	}
	inRegion := func(base cache.Addr, lines int) bool {
		return lines > 0 && a >= base && a < base+cache.Addr(lines)*lineBytes
	}
	switch {
	case inRegion(hotBase(coreID), p.HotLines):
		return RegionHot, 0
	case inRegion(streamBase(coreID), p.StreamLines):
		return RegionStream, 0
	case inRegion(coldBase(coreID), p.ColdLines):
		return RegionCold, 0
	}
	return RegionOther, 0
}
