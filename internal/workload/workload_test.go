package workload

import (
	"testing"
	"testing/quick"

	"reactivenoc/internal/cpu"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range Parallel() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	mix := Multiprogrammed()
	if err := mix.Validate(); err != nil {
		t.Errorf("mix: %v", err)
	}
	micro := Micro()
	if err := micro.Validate(); err != nil {
		t.Errorf("micro: %v", err)
	}
}

func TestParallelCountMatchesPaper(t *testing.T) {
	// 10 PARSEC + 11 SPLASH-2 applications.
	if n := len(Parallel()); n != 21 {
		t.Fatalf("%d parallel profiles, want 21", n)
	}
	if n := len(Names()); n != 22 {
		t.Fatalf("%d workload names, want 22 (21 apps + mix)", n)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("canneal"); !ok {
		t.Error("canneal missing")
	}
	if _, ok := ByName("mix"); !ok {
		t.Error("mix missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("phantom workload found")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := Micro()
	a, b := p.Stream(3, 42), p.Stream(3, 42)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at op %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestStreamsDifferAcrossCores(t *testing.T) {
	p := Micro()
	a, b := p.Stream(0, 1), p.Stream(1, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("cores produced %d/1000 identical ops", same)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	p := Micro()
	regions := p.Regions(2)
	inRegion := func(a uint64) bool {
		if a >= uint64(coldBase(2)) && a < uint64(coldBase(2))+uint64(p.ColdLines*64) {
			return true
		}
		for _, r := range regions {
			if a >= uint64(r.Start) && a < uint64(r.Start)+uint64(r.Lines*64) {
				return true
			}
		}
		return false
	}
	st := p.Stream(2, 7)
	for i := 0; i < 20000; i++ {
		op := st.Next()
		if op.Kind == cpu.OpCompute {
			continue
		}
		if !inRegion(uint64(op.Addr)) {
			t.Fatalf("address %#x outside every region", op.Addr)
		}
		if op.Addr%64 != 0 {
			t.Fatalf("address %#x not line-aligned", op.Addr)
		}
	}
}

func TestMemFractionObserved(t *testing.T) {
	p := Micro()
	st := p.Stream(0, 9)
	mem := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if st.Next().Kind != cpu.OpCompute {
			mem++
		}
	}
	frac := float64(mem) / n
	if frac < p.MemFraction-0.02 || frac > p.MemFraction+0.02 {
		t.Fatalf("observed mem fraction %.3f, want ~%.3f", frac, p.MemFraction)
	}
}

func TestWriteFractionObserved(t *testing.T) {
	p := Micro()
	st := p.Stream(0, 11)
	mem, writes := 0, 0
	for i := 0; i < 100000; i++ {
		op := st.Next()
		if op.Kind == cpu.OpCompute {
			continue
		}
		mem++
		if op.Kind == cpu.OpStore {
			writes++
		}
	}
	frac := float64(writes) / float64(mem)
	if frac < p.WriteFraction-0.03 || frac > p.WriteFraction+0.03 {
		t.Fatalf("observed write fraction %.3f, want ~%.3f", frac, p.WriteFraction)
	}
}

func TestRegionsDoNotOverlapAcrossCores(t *testing.T) {
	p := Multiprogrammed()
	check := func(a, b uint8) bool {
		ca, cb := int(a%64), int(b%64)
		if ca == cb {
			return true
		}
		for _, ra := range p.Regions(ca) {
			for _, rb := range p.Regions(cb) {
				aEnd := uint64(ra.Start) + uint64(ra.Lines*64)
				bEnd := uint64(rb.Start) + uint64(rb.Lines*64)
				if uint64(ra.Start) < bEnd && uint64(rb.Start) < aEnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSharedRegionSharedAcrossCores(t *testing.T) {
	p := Micro()
	r0 := p.Regions(0)
	r1 := p.Regions(1)
	if r0[len(r0)-1].Start != r1[len(r1)-1].Start {
		t.Fatal("shared region must be common to all cores")
	}
}

func TestHotRegionWarmsWholeL1(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		var l1 int
		for _, r := range p.Regions(0) {
			l1 += r.L1Lines
		}
		if l1 > 512 {
			t.Errorf("%s prefills %d L1 lines (capacity 512)", name, l1)
		}
		if p.StreamLines > 0 && l1 < 400 {
			t.Errorf("%s leaves the L1 mostly cold (%d lines)", name, l1)
		}
	}
}

func TestInvalidProfilesRejected(t *testing.T) {
	bad := []Profile{
		{Name: "x", MemFraction: 1.2, HotLines: 10},
		{Name: "x", MemFraction: 0.3, HotLines: 0},
		{Name: "x", MemFraction: 0.3, HotLines: 10, StreamFraction: 0.1},
		{Name: "x", MemFraction: 0.3, HotLines: 10, SharedFraction: 0.1},
		{Name: "x", MemFraction: 0.3, HotLines: 10, ColdFraction: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	p := Micro()
	rec := p.Record(3, 7, 500)
	if len(rec.Ops) != 500 {
		t.Fatalf("recorded %d ops", len(rec.Ops))
	}
	live := p.Stream(3, 7)
	for i := 0; i < 500; i++ {
		if got, want := rec.Next(), live.Next(); got != want {
			t.Fatalf("op %d: replay %+v != live %+v", i, got, want)
		}
	}
	// Exhausted slice streams degrade to compute ops.
	if op := rec.Next(); op.Kind != cpu.OpCompute {
		t.Fatalf("exhausted stream returned %+v", op)
	}
}

func TestScaledClampsAndRenames(t *testing.T) {
	p := Micro()
	q := p.Scaled(100)
	if q.StreamFraction > 0.5 || q.SharedFraction > 0.5 {
		t.Fatal("scaling must clamp fractions")
	}
	if q.Name == p.Name {
		t.Fatal("scaled profile should carry a distinct name")
	}
	half := p.Scaled(0.5)
	if half.StreamFraction >= p.StreamFraction {
		t.Fatal("down-scaling did not reduce intensity")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}
