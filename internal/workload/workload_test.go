package workload

import (
	"math"
	"testing"
	"testing/quick"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/cpu"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range Parallel() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	mix := Multiprogrammed()
	if err := mix.Validate(); err != nil {
		t.Errorf("mix: %v", err)
	}
	micro := Micro()
	if err := micro.Validate(); err != nil {
		t.Errorf("micro: %v", err)
	}
}

func TestParallelCountMatchesPaper(t *testing.T) {
	// 10 PARSEC + 11 SPLASH-2 applications.
	if n := len(Parallel()); n != 21 {
		t.Fatalf("%d parallel profiles, want 21", n)
	}
	if n := len(Names()); n != 22 {
		t.Fatalf("%d workload names, want 22 (21 apps + mix)", n)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("canneal"); !ok {
		t.Error("canneal missing")
	}
	if _, ok := ByName("mix"); !ok {
		t.Error("mix missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("phantom workload found")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := Micro()
	a, b := p.Stream(3, 42), p.Stream(3, 42)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at op %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestStreamsDifferAcrossCores(t *testing.T) {
	p := Micro()
	a, b := p.Stream(0, 1), p.Stream(1, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("cores produced %d/1000 identical ops", same)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	p := Micro()
	regions := p.Regions(2)
	inRegion := func(a uint64) bool {
		if a >= uint64(coldBase(2)) && a < uint64(coldBase(2))+uint64(p.ColdLines*64) {
			return true
		}
		for _, r := range regions {
			if a >= uint64(r.Start) && a < uint64(r.Start)+uint64(r.Lines*64) {
				return true
			}
		}
		return false
	}
	st := p.Stream(2, 7)
	for i := 0; i < 20000; i++ {
		op := st.Next()
		if op.Kind == cpu.OpCompute {
			continue
		}
		if !inRegion(uint64(op.Addr)) {
			t.Fatalf("address %#x outside every region", op.Addr)
		}
		if op.Addr%64 != 0 {
			t.Fatalf("address %#x not line-aligned", op.Addr)
		}
	}
}

func TestMemFractionObserved(t *testing.T) {
	p := Micro()
	st := p.Stream(0, 9)
	mem := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if st.Next().Kind != cpu.OpCompute {
			mem++
		}
	}
	frac := float64(mem) / n
	if frac < p.MemFraction-0.02 || frac > p.MemFraction+0.02 {
		t.Fatalf("observed mem fraction %.3f, want ~%.3f", frac, p.MemFraction)
	}
}

func TestWriteFractionObserved(t *testing.T) {
	p := Micro()
	st := p.Stream(0, 11)
	mem, writes := 0, 0
	for i := 0; i < 100000; i++ {
		op := st.Next()
		if op.Kind == cpu.OpCompute {
			continue
		}
		mem++
		if op.Kind == cpu.OpStore {
			writes++
		}
	}
	frac := float64(writes) / float64(mem)
	if frac < p.WriteFraction-0.03 || frac > p.WriteFraction+0.03 {
		t.Fatalf("observed write fraction %.3f, want ~%.3f", frac, p.WriteFraction)
	}
}

func TestRegionsDoNotOverlapAcrossCores(t *testing.T) {
	p := Multiprogrammed()
	check := func(a, b uint8) bool {
		ca, cb := int(a%64), int(b%64)
		if ca == cb {
			return true
		}
		for _, ra := range p.Regions(ca) {
			for _, rb := range p.Regions(cb) {
				aEnd := uint64(ra.Start) + uint64(ra.Lines*64)
				bEnd := uint64(rb.Start) + uint64(rb.Lines*64)
				if uint64(ra.Start) < bEnd && uint64(rb.Start) < aEnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSharedRegionSharedAcrossCores(t *testing.T) {
	p := Micro()
	r0 := p.Regions(0)
	r1 := p.Regions(1)
	if r0[len(r0)-1].Start != r1[len(r1)-1].Start {
		t.Fatal("shared region must be common to all cores")
	}
}

func TestHotRegionWarmsWholeL1(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		var l1 int
		for _, r := range p.Regions(0) {
			l1 += r.L1Lines
		}
		if l1 > 512 {
			t.Errorf("%s prefills %d L1 lines (capacity 512)", name, l1)
		}
		if p.StreamLines > 0 && l1 < 400 {
			t.Errorf("%s leaves the L1 mostly cold (%d lines)", name, l1)
		}
	}
}

func TestInvalidProfilesRejected(t *testing.T) {
	bad := []Profile{
		{Name: "x", MemFraction: 1.2, HotLines: 10},
		{Name: "x", MemFraction: 0.3, HotLines: 0},
		{Name: "x", MemFraction: 0.3, HotLines: 10, StreamFraction: 0.1},
		{Name: "x", MemFraction: 0.3, HotLines: 10, SharedFraction: 0.1},
		{Name: "x", MemFraction: 0.3, HotLines: 10, ColdFraction: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	p := Micro()
	rec := p.Record(3, 7, 500)
	if len(rec.Ops) != 500 {
		t.Fatalf("recorded %d ops", len(rec.Ops))
	}
	live := p.Stream(3, 7)
	for i := 0; i < 500; i++ {
		if got, want := rec.Next(), live.Next(); got != want {
			t.Fatalf("op %d: replay %+v != live %+v", i, got, want)
		}
	}
	// Exhausted slice streams degrade to compute ops.
	if op := rec.Next(); op.Kind != cpu.OpCompute {
		t.Fatalf("exhausted stream returned %+v", op)
	}
}

func TestScaledClampsAndRenames(t *testing.T) {
	p := Micro()
	q := p.Scaled(100)
	if q.StreamFraction > 0.5 || q.SharedFraction > 0.5 {
		t.Fatal("scaling must clamp fractions")
	}
	if q.Name == p.Name {
		t.Fatal("scaled profile should carry a distinct name")
	}
	half := p.Scaled(0.5)
	if half.StreamFraction >= p.StreamFraction {
		t.Fatal("down-scaling did not reduce intensity")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformedGeneratorConfigs(t *testing.T) {
	base := Micro()
	with := func(mut func(*Profile)) Profile {
		p := base
		mut(&p)
		return p
	}
	cases := []struct {
		name string
		p    Profile
	}{
		{"nan share", with(func(p *Profile) { p.SharedFraction = math.NaN() })},
		{"inf share", with(func(p *Profile) { p.StreamFraction = math.Inf(1) })},
		{"negative share", with(func(p *Profile) { p.MemFraction = -0.1 })},
		{"share above one", with(func(p *Profile) { p.WriteFraction = 1.5 })},
		{"nan locality", with(func(p *Profile) { p.Locality = math.NaN() })},
		{"unknown pattern", with(func(p *Profile) { p.Pattern = "zigzag" })},
		{"pattern without shared region", with(func(p *Profile) {
			p.Pattern = PatternHotspot
			p.SharedLines, p.SharedFraction = 0, 0
		})},
		{"negative burst on", with(func(p *Profile) { p.BurstOn = -1 })},
		{"negative burst off", with(func(p *Profile) { p.BurstOff = -4 })},
		{"off-only burst", with(func(p *Profile) { p.BurstOn, p.BurstOff = 0, 100 })},
		{"negative phase switch", with(func(p *Profile) { p.PhaseOps, p.PhaseNext = -5, "micro" })},
		{"phase switch without successor", with(func(p *Profile) { p.PhaseOps = 1000 })},
		{"successor without switch point", with(func(p *Profile) { p.PhaseNext = "micro" })},
		{"unresolvable successor", with(func(p *Profile) { p.PhaseOps, p.PhaseNext = 1000, "no_such_workload" })},
		{"trace with synthetic knobs", with(func(p *Profile) { p.TracePath = "x.rctf" })},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateAcceptsGeneratorConfigs(t *testing.T) {
	base := Micro()
	good := []Profile{
		func() Profile { p := base; p.Pattern = PatternHotspot; return p }(),
		func() Profile { p := base; p.Pattern = PatternTranspose; return p }(),
		func() Profile { p := base; p.Pattern = PatternTornado; return p }(),
		func() Profile { p := base; p.BurstOn, p.BurstOff = 200, 800; return p }(),
		func() Profile { p := base; p.BurstOn = 100; return p }(), // on-only: plain stream
		func() Profile { p := base; p.PhaseOps, p.PhaseNext = 1000, "mix"; return p }(),
		{Name: "replay", TracePath: "run.rctf", TraceCRC: 0xDEADBEEF},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRegisterAndResolveGenerators(t *testing.T) {
	p := Micro()
	p.Name = "test_gen_profile"
	p.Pattern = PatternTornado
	Register(p)
	got, ok := ByName("test_gen_profile")
	if !ok {
		t.Fatal("registered generator not resolvable via ByName")
	}
	if got.Pattern != PatternTornado {
		t.Fatalf("resolved wrong profile: %+v", got)
	}
	found := false
	for _, n := range GeneratorNames() {
		if n == "test_gen_profile" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered generator missing from GeneratorNames")
	}
}

func TestRegisterRejectsBuiltinCollisions(t *testing.T) {
	for _, name := range []string{"", "micro", "mix", "canneal"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", name)
				}
			}()
			p := Micro()
			p.Name = name
			Register(p)
		}()
	}
}

func TestBurstDutyCycleObserved(t *testing.T) {
	p := Micro()
	p.BurstOn, p.BurstOff = 100, 300
	st := p.Stream(0, 13)
	mem := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if st.Next().Kind != cpu.OpCompute {
			mem++
		}
	}
	// Duty cycle 1/4: memory share should be ~MemFraction/4.
	want := p.MemFraction / 4
	frac := float64(mem) / n
	if frac < want-0.02 || frac > want+0.02 {
		t.Fatalf("observed mem fraction %.3f under bursts, want ~%.3f", frac, want)
	}
}

func TestBurstOnWindowIndependentOfDuty(t *testing.T) {
	// The off-window draws no RNG, so the on-window op sequence must be the
	// plain stream's sequence, whatever the duty cycle.
	plain := Micro()
	bursty := Micro()
	bursty.BurstOn, bursty.BurstOff = 50, 150
	a, b := plain.Stream(2, 21), bursty.Stream(2, 21)
	period := bursty.BurstOn + bursty.BurstOff
	for i := int64(0); i < 20000; i++ {
		got := b.Next()
		if i%period >= bursty.BurstOn {
			if got.Kind != cpu.OpCompute {
				t.Fatalf("op %d: off-window issued %+v", i, got)
			}
			continue
		}
		if want := a.Next(); got != want {
			t.Fatalf("op %d: on-window op %+v != plain op %+v", i, got, want)
		}
	}
}

func TestPhaseSwitchChangesBehaviour(t *testing.T) {
	heavy := Micro()
	heavy.Name = "test_phase_heavy"
	Register(heavy)
	p := Micro()
	p.MemFraction = 0.0 // first phase: pure compute
	p.PhaseOps = 1000
	p.PhaseNext = "test_phase_heavy"
	st := p.Stream(0, 5)
	for i := 0; i < 1000; i++ {
		if op := st.Next(); op.Kind != cpu.OpCompute {
			t.Fatalf("op %d: pre-switch phase issued memory op %+v", i, op)
		}
	}
	mem := 0
	for i := 0; i < 10000; i++ {
		if st.Next().Kind != cpu.OpCompute {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("post-switch phase never touched memory")
	}
}

func TestPatternAddressesHomeOnTarget(t *testing.T) {
	const w, h = 4, 4
	nodes := w * h
	homeOf := func(a cache.Addr) int { return int((uint64(a) / 64) % uint64(nodes)) }
	for _, pat := range []string{PatternHotspot, PatternTranspose, PatternTornado} {
		p := Micro()
		p.Pattern = pat
		p.SharedFraction = 1.0 // every memory op shared, to sample the pattern
		p.ColdFraction, p.StreamFraction = 0, 0
		for core := 0; core < nodes; core++ {
			st := p.StreamGeom(core, w, h, 99).(*stream)
			want := st.patternTarget()
			for i := 0; i < 2000; i++ {
				op := st.Next()
				if op.Kind == cpu.OpCompute {
					continue
				}
				if got := homeOf(op.Addr); got != want {
					t.Fatalf("%s core %d: address %#x homes on %d, want %d", pat, core, op.Addr, got, want)
				}
			}
		}
	}
}

func TestHotspotAimsAtCentralTile(t *testing.T) {
	p := Micro()
	p.Pattern = PatternHotspot
	st := p.StreamGeom(0, 4, 4, 1).(*stream)
	if got := st.patternTarget(); got != 2*4+2 {
		t.Fatalf("hotspot target %d, want central tile 10", got)
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	const w, h = 8, 8
	p := Micro()
	p.Pattern = PatternTranspose
	for core := 0; core < w*h; core++ {
		s1 := p.StreamGeom(core, w, h, 1).(*stream)
		t1 := s1.patternTarget()
		s2 := p.StreamGeom(t1, w, h, 1).(*stream)
		if got := s2.patternTarget(); got != core {
			t.Fatalf("transpose(transpose(%d)) = %d", core, got)
		}
	}
}

func TestClassifyRoundTripsRegions(t *testing.T) {
	p := Micro()
	st := p.Stream(1, 33)
	for i := 0; i < 20000; i++ {
		op := st.Next()
		if op.Kind == cpu.OpCompute {
			continue
		}
		rc, hint := p.Classify(1, op.Addr)
		if rc == RegionNone || rc == RegionOther {
			t.Fatalf("address %#x classified %v", op.Addr, rc)
		}
		if rc != RegionShared && hint != 0 {
			t.Fatalf("private address %#x carries sharer hint %d", op.Addr, hint)
		}
	}
}

func TestStreamGeomPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StreamGeom accepted an invalid profile")
		}
	}()
	p := Micro()
	p.Pattern = "bogus"
	p.StreamGeom(0, 4, 4, 1)
}

func TestRegionClassStrings(t *testing.T) {
	want := map[RegionClass]string{
		RegionNone: "none", RegionHot: "hot", RegionStream: "stream",
		RegionCold: "cold", RegionShared: "shared", RegionOther: "other",
	}
	for rc, s := range want {
		if rc.String() != s {
			t.Errorf("%d.String() = %q, want %q", rc, rc.String(), s)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("ByName invented a workload")
	}
}

func TestRegionsEdgeShapes(t *testing.T) {
	// A stream region smaller than the free L1 space: the whole stream
	// prefills, starting at its first line.
	p := Micro()
	p.StreamLines = 4
	for _, r := range p.Regions(0) {
		if r.Start == streamBase(0) {
			if r.L1From != 0 || r.L1Lines != 4 {
				t.Fatalf("small stream region prefill = from %d lines %d, want the whole region", r.L1From, r.L1Lines)
			}
		}
	}
	// No shared region → no shared entry.
	p.SharedLines, p.SharedFraction = 0, 0
	for _, r := range p.Regions(1) {
		if r.Start == sharedBase {
			t.Fatal("sharedless profile emitted a shared region")
		}
	}
}

func TestStreamGeomRefusesTraceProfiles(t *testing.T) {
	p := Micro()
	p.TracePath = "/tmp/whatever.rctf"
	defer func() {
		if recover() == nil {
			t.Fatal("StreamGeom synthesized a trace-driven profile")
		}
	}()
	p.StreamGeom(0, 4, 4, 1)
}

func TestTransposeRectangularFallback(t *testing.T) {
	// On a non-square mesh the transpose has no axis to mirror across;
	// the point reflection keeps every target distinct and off-tile.
	p := Micro()
	p.Pattern = PatternTranspose
	p.SharedLines, p.SharedFraction = 256, 0.5
	w, h := 4, 2
	seen := map[int]bool{}
	for core := 0; core < w*h; core++ {
		s := p.StreamGeom(core, w, h, 9).(*stream)
		target := s.patternTarget()
		if target < 0 || target >= w*h {
			t.Fatalf("core %d: target %d off the %dx%d mesh", core, target, w, h)
		}
		if seen[target] {
			t.Fatalf("core %d: target %d already taken (not a permutation)", core, target)
		}
		seen[target] = true
	}
}

func TestPatternAddrTinySharedRegion(t *testing.T) {
	// Fewer shared lines than mesh tiles: the span clamps to one line per
	// target and the address still homes on the pattern tile.
	p := Micro()
	p.Pattern = PatternHotspot
	p.SharedLines, p.SharedFraction = 8, 0.5
	w, h := 4, 4
	for core := 0; core < w*h; core++ {
		s := p.StreamGeom(core, w, h, 3).(*stream)
		a := s.patternAddr()
		if home := int((a / lineBytes) % cache.Addr(w*h)); home != s.patternTarget() {
			t.Fatalf("core %d: addr homes on %d, want %d", core, home, s.patternTarget())
		}
	}
}

func TestClassifyTinySharedHotEighth(t *testing.T) {
	// Fewer than eight shared lines: the contended eighth clamps to one
	// line instead of vanishing.
	p := Micro()
	p.SharedLines = 4
	if rc, hint := p.Classify(0, sharedBase); rc != RegionShared || hint != 2 {
		t.Fatalf("first shared line = %v/%d, want shared/2", rc, hint)
	}
	if rc, hint := p.Classify(0, sharedBase+lineBytes); rc != RegionShared || hint != 1 {
		t.Fatalf("second shared line = %v/%d, want shared/1", rc, hint)
	}
}
