// Package workload generates the synthetic memory traffic that stands in
// for the paper's PARSEC, SPLASH-2 and SPEC CPU 2006 workloads.
//
// Substitution rationale (see DESIGN.md): the NoC only observes the miss
// stream the cores emit, so each application is modelled by the parameters
// that shape that stream. Every core touches three regions:
//
//   - a hot private region that fits in the L1 (hits, no traffic);
//   - a streaming private region that fits in the L2 but thrashes the L1 —
//     its access share directly sets the L1 miss rate, producing the
//     request/data-reply/ack and write-back traffic of Table 3;
//   - a shared region (absent in the multiprogrammed mix) whose writes
//     produce forwards, L1-to-L1 transfers and invalidations.
//
// The profile values are synthetic analogs tuned so the network-visible
// aggregates match the paper's reported environment: a reply-dominated
// message mix (Table 1) and a lightly loaded network (under four flits
// injected per hundred cycles per node). They are not measurements of the
// original benchmarks. The regions are installed warm via functional cache
// prefill, standing in for the paper's 200M-cycle warm-up.
package workload

import (
	"fmt"
	"math"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/cpu"
	"reactivenoc/internal/sim"
)

// Profile parameterizes one application's memory behaviour.
type Profile struct {
	Name string

	// MemFraction is the probability an operation touches memory.
	MemFraction float64
	// WriteFraction is the probability a memory operation is a store.
	WriteFraction float64

	// HotLines is the L1-resident private region (walked, mostly hits).
	HotLines int
	// StreamLines is the L2-resident private region cycled through by a
	// pointer walk; every access misses the L1, so StreamFraction is a
	// direct L1-miss-rate knob.
	StreamLines int
	// StreamFraction is the probability a private access goes to the
	// streaming region.
	StreamFraction float64

	// SharedLines sizes the globally shared region; SharedFraction is
	// the probability a memory access targets it; HotFraction
	// concentrates shared accesses on its first eighth (locks, queue
	// heads), maximizing coherence interaction.
	SharedLines    int
	SharedFraction float64
	HotFraction    float64

	// ColdLines sizes a never-warm region whose rare accesses miss the
	// L2 and reach the memory controllers (the paper's MEMORY traffic,
	// ~1% of messages); ColdFraction is their share of memory accesses.
	ColdLines    int
	ColdFraction float64

	// Locality is the probability a hot-region access continues the
	// sequential walk rather than jumping randomly within the region.
	Locality float64

	// The fields below parameterize the adversarial/bursty generators
	// (internal/tracefeed) and trace replay. They are zero for the classic
	// stationary profiles, and every JSON tag carries omitempty so the
	// encodings — and therefore the spec fingerprints — of pre-existing
	// workloads are byte-identical to what they were before these knobs.

	// Pattern remaps shared-region accesses onto an adversarial
	// destination pattern: "" keeps the profile-driven uniform choice;
	// PatternHotspot funnels every shared access to lines homed on one
	// central tile; PatternTranspose sends core (x,y)'s shared accesses to
	// lines homed on (y,x); PatternTornado targets the tile halfway around
	// the row. Patterns need the mesh geometry, which reaches the stream
	// through StreamGeom; a geometry-less Stream ignores the pattern.
	Pattern string `json:",omitempty"`

	// BurstOn/BurstOff, when both positive, chop the instruction stream
	// into on/off windows of that many operations: during an off window
	// the core only computes, so the network sees bursts with a duty cycle
	// of BurstOn/(BurstOn+BurstOff).
	BurstOn  int64 `json:",omitempty"`
	BurstOff int64 `json:",omitempty"`

	// PhaseOps/PhaseNext switch the stream to the registered profile
	// named PhaseNext after PhaseOps operations — the phase-changing mixes
	// that stress the timed-window predictor. Chains may loop (A→B→A);
	// cursors reset at each switch while the RNG carries over, so the
	// whole run stays deterministic.
	PhaseOps  int64  `json:",omitempty"`
	PhaseNext string `json:",omitempty"`

	// TracePath, when set, drives the cores from a recorded binary trace
	// (internal/tracefeed) instead of the synthetic generator; the other
	// traffic knobs must be zero. TraceCRC pins the file's payload
	// checksum so two different traces at the same path never alias in the
	// spec fingerprint or a result cache.
	TracePath string `json:",omitempty"`
	TraceCRC  uint32 `json:",omitempty"`
}

// Destination patterns accepted by Profile.Pattern.
const (
	PatternHotspot   = "hotspot"
	PatternTranspose = "transpose"
	PatternTornado   = "tornado"
)

// Validate rejects nonsensical profiles: out-of-range, NaN or infinite
// shares, patterns without a shared region, degenerate burst windows, and
// unresolvable or out-of-range phase switches. It runs at spec build (and
// again defensively at stream construction) so a malformed generator
// config fails before a run starts, not mid-simulation.
func (p *Profile) Validate() error {
	if p.TracePath != "" {
		// A trace-driven profile carries no synthetic knobs: the recorded
		// file supplies the regions and the op stream.
		if p.MemFraction != 0 || p.StreamFraction != 0 || p.SharedFraction != 0 ||
			p.ColdFraction != 0 || p.HotLines != 0 || p.Pattern != "" ||
			p.BurstOn != 0 || p.BurstOff != 0 || p.PhaseOps != 0 || p.PhaseNext != "" {
			return fmt.Errorf("workload %q: trace replay cannot combine with synthetic traffic knobs", p.Name)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MemFraction", p.MemFraction}, {"WriteFraction", p.WriteFraction},
		{"SharedFraction", p.SharedFraction}, {"StreamFraction", p.StreamFraction},
		{"ColdFraction", p.ColdFraction}, {"Locality", p.Locality},
		{"HotFraction", p.HotFraction},
	} {
		// NaN slips through plain range comparisons (every comparison with
		// it is false), so it is rejected by name before the range check.
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload %q: %s is not a finite share", p.Name, f.name)
		}
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %q: %s out of [0,1]", p.Name, f.name)
		}
	}
	switch {
	case p.HotLines <= 0:
		return fmt.Errorf("workload %q: empty hot working set", p.Name)
	case p.StreamFraction > 0 && p.StreamLines <= 0:
		return fmt.Errorf("workload %q: stream accesses without a stream region", p.Name)
	case p.SharedFraction > 0 && p.SharedLines <= 0:
		return fmt.Errorf("workload %q: shared accesses without a shared region", p.Name)
	case p.ColdFraction > 0 && p.ColdLines <= 0:
		return fmt.Errorf("workload %q: cold accesses without a cold region", p.Name)
	}
	switch p.Pattern {
	case "", PatternHotspot, PatternTranspose, PatternTornado:
	default:
		return fmt.Errorf("workload %q: unknown pattern %q", p.Name, p.Pattern)
	}
	if p.Pattern != "" && p.SharedLines <= 0 {
		return fmt.Errorf("workload %q: pattern %q needs a shared region to aim", p.Name, p.Pattern)
	}
	switch {
	case p.BurstOn < 0 || p.BurstOff < 0:
		return fmt.Errorf("workload %q: negative burst window", p.Name)
	case p.BurstOff > 0 && p.BurstOn <= 0:
		return fmt.Errorf("workload %q: off-only burst never issues memory traffic", p.Name)
	}
	switch {
	case p.PhaseOps < 0:
		return fmt.Errorf("workload %q: phase switch at negative operation count", p.Name)
	case p.PhaseOps > 0 && p.PhaseNext == "":
		return fmt.Errorf("workload %q: phase switch with no successor profile", p.Name)
	case p.PhaseOps == 0 && p.PhaseNext != "":
		return fmt.Errorf("workload %q: successor profile %q without a phase-switch point", p.Name, p.PhaseNext)
	case p.PhaseNext != "" && p.PhaseNext != p.Name:
		if _, ok := ByName(p.PhaseNext); !ok {
			return fmt.Errorf("workload %q: phase successor %q is not a registered workload", p.Name, p.PhaseNext)
		}
	}
	return nil
}

const lineBytes = 64

// sharedBase places the shared region well above every private region.
const sharedBase cache.Addr = 1 << 34

// privateSpan spaces per-core private regions.
const privateSpan cache.Addr = 1 << 28

// streamOffset separates a core's streaming region from its hot region.
const streamOffset cache.Addr = 1 << 24

// l2SetBytes is the address stride that advances one set in an L2 bank
// (interleave 16B-line... 64B lines across up-to-64 banks: one bank-local
// set consumes banks*64 bytes; 64 banks is the worst case and also works
// for 16, keeping staggering deterministic across chip sizes).
const l2SetBytes = 64 * 64

// hotBase returns core c's hot-region base, staggered so different cores'
// regions do not alias into the same L2 sets (real applications have
// arbitrary bases; power-of-two bases would thrash a subset of the banks).
func hotBase(c int) cache.Addr {
	return cache.Addr(c+1)*privateSpan + cache.Addr((c*149)%1024)*l2SetBytes
}

// streamBase returns core c's streaming-region base, staggered away from
// every hot region.
func streamBase(c int) cache.Addr {
	return cache.Addr(c+1)*privateSpan + streamOffset + cache.Addr((c*383+511)%1024)*l2SetBytes
}

// coldBase returns core c's cold-region base (never prefilled).
func coldBase(c int) cache.Addr {
	return cache.Addr(c+1)*privateSpan + 2*streamOffset + cache.Addr((c*619+257)%1024)*l2SetBytes
}

// Region describes an address range for functional cache warming.
type Region struct {
	Start cache.Addr
	Lines int
	// Lines [L1From, L1From+L1Lines) are also installed warm in the
	// owning core's L1 (the paper's warm-up leaves the L1s full, so the
	// measured phase sees steady-state replacement traffic immediately).
	L1From  int
	L1Lines int
	// Exclusive marks private data, prefilled in E state.
	Exclusive bool
}

// l1Lines is the L1 capacity in lines (32 KB / 64 B).
const l1Lines = 512

// Regions returns the address ranges core coreID touches, for prefill.
// The cold region is deliberately absent: its accesses must reach memory.
func (p Profile) Regions(coreID int) []Region {
	rs := []Region{{Start: hotBase(coreID), Lines: p.HotLines, L1Lines: p.HotLines, Exclusive: true}}
	if p.StreamLines > 0 {
		// Fill the rest of the L1 with the *tail* of the stream: the
		// walk starts at line 0 in un-cached territory (so misses start
		// immediately) while the L1 is completely full.
		fill := l1Lines - p.HotLines
		if fill < 0 {
			fill = 0
		}
		if fill > p.StreamLines {
			fill = p.StreamLines
		}
		rs = append(rs, Region{
			Start: streamBase(coreID), Lines: p.StreamLines,
			L1From: p.StreamLines - fill, L1Lines: fill, Exclusive: true,
		})
	}
	if p.SharedLines > 0 {
		rs = append(rs, Region{Start: sharedBase, Lines: p.SharedLines})
	}
	return rs
}

// Scaled returns a copy of the profile with its traffic-producing
// fractions multiplied by k (clamped to stay meaningful), modelling a
// lighter (k < 1) or heavier (k > 1) network load with the same footprint.
// Used by the load-threshold experiment.
func (p Profile) Scaled(k float64) Profile {
	clamp := func(v float64) float64 {
		if v > 0.5 {
			return 0.5
		}
		return v
	}
	q := p
	q.Name = fmt.Sprintf("%s_x%g", p.Name, k)
	q.StreamFraction = clamp(p.StreamFraction * k)
	q.SharedFraction = clamp(p.SharedFraction * k)
	q.ColdFraction = clamp(p.ColdFraction * k)
	return q
}

// stream implements cpu.Stream for one core.
type stream struct {
	p         Profile
	rng       *sim.RNG
	core      int
	w, h      int // mesh geometry (0 when unknown: patterns disabled)
	ops       int64
	hotCursor int
	strCursor int
}

// Stream returns core coreID's deterministic instruction stream. The mesh
// geometry is unknown here, so adversarial destination patterns are
// inert; simulation runs construct streams through StreamGeom instead.
func (p Profile) Stream(coreID int, seed uint64) cpu.Stream {
	return p.StreamGeom(coreID, 0, 0, seed)
}

// StreamGeom is Stream with the mesh geometry attached, which the
// adversarial destination patterns (hotspot, transpose, tornado) need to
// aim shared-region accesses at specific home tiles. All stream state is
// per-core, so trace-recorded or pattern-driven runs shard exactly like
// the stationary ones.
func (p Profile) StreamGeom(coreID, width, height int, seed uint64) cpu.Stream {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.TracePath != "" {
		panic(fmt.Sprintf("workload %q: trace-driven profiles are replayed by internal/tracefeed, not synthesized", p.Name))
	}
	return &stream{
		p:    p,
		rng:  sim.NewRNG(seed ^ (uint64(coreID)+1)*0x9E3779B97F4A7C15),
		core: coreID,
		w:    width,
		h:    height,
	}
}

func (s *stream) Next() cpu.Op {
	if s.p.PhaseOps > 0 && s.ops >= s.p.PhaseOps {
		s.switchPhase()
	}
	s.ops++
	if s.p.BurstOn > 0 && s.p.BurstOff > 0 &&
		(s.ops-1)%(s.p.BurstOn+s.p.BurstOff) >= s.p.BurstOn {
		// Off window: the pipeline computes, the network rests. No RNG
		// draw, so the on-window sequence is independent of the duty cycle.
		return cpu.Op{Kind: cpu.OpCompute}
	}
	if !s.rng.Bool(s.p.MemFraction) {
		return cpu.Op{Kind: cpu.OpCompute}
	}
	kind := cpu.OpLoad
	if s.rng.Bool(s.p.WriteFraction) {
		kind = cpu.OpStore
	}
	return cpu.Op{Kind: kind, Addr: s.addr()}
}

// switchPhase swaps in the successor profile: cursors restart, the RNG
// carries over (one deterministic sequence across the whole run), and the
// geometry stays, so a successor with a pattern aims correctly.
func (s *stream) switchPhase() {
	next, ok := ByName(s.p.PhaseNext)
	if !ok {
		// Validate checked resolvability at spec build; a registry that
		// shrank since is a programming error.
		panic(fmt.Sprintf("workload %q: phase successor %q vanished from the registry", s.p.Name, s.p.PhaseNext))
	}
	s.p = next
	s.ops = 0
	s.hotCursor, s.strCursor = 0, 0
}

// patternTarget returns the mesh tile this core's pattern aims at.
// Tiles are numbered row-major (mesh.NodeID: id = y*width + x).
func (s *stream) patternTarget() int {
	x, y := s.core%s.w, s.core/s.w
	switch s.p.Pattern {
	case PatternHotspot:
		return (s.h/2)*s.w + s.w/2 // the central tile
	case PatternTranspose:
		if s.w == s.h {
			return x*s.w + y
		}
		return s.w*s.h - 1 - s.core // rectangular fallback: point reflection
	default: // PatternTornado
		return y*s.w + (x+s.w/2)%s.w
	}
}

// patternAddr picks a shared-region line homed on the pattern's target
// tile. Lines are interleaved across the chip's L2 banks line-by-line and
// sharedBase is bank-aligned, so line numbers congruent to the target
// modulo the node count land exactly there.
func (s *stream) patternAddr() cache.Addr {
	nodes := s.w * s.h
	target := s.patternTarget()
	span := s.p.SharedLines / nodes
	if span < 1 {
		span = 1
	}
	line := target + nodes*s.rng.Intn(span)
	return sharedBase + cache.Addr(line)*lineBytes
}

func (s *stream) addr() cache.Addr {
	if s.p.SharedFraction > 0 && s.rng.Bool(s.p.SharedFraction) {
		if s.p.Pattern != "" && s.w > 0 && s.h > 0 {
			return s.patternAddr()
		}
		n := s.p.SharedLines
		if s.p.HotFraction > 0 && s.rng.Bool(s.p.HotFraction) {
			hot := n / 8
			if hot < 1 {
				hot = 1
			}
			return sharedBase + cache.Addr(s.rng.Intn(hot))*lineBytes
		}
		return sharedBase + cache.Addr(s.rng.Intn(n))*lineBytes
	}
	if s.p.ColdFraction > 0 && s.rng.Bool(s.p.ColdFraction) {
		return coldBase(s.core) + cache.Addr(s.rng.Intn(s.p.ColdLines))*lineBytes
	}
	if s.p.StreamFraction > 0 && s.rng.Bool(s.p.StreamFraction) {
		s.strCursor = (s.strCursor + 1) % s.p.StreamLines
		return streamBase(s.core) + cache.Addr(s.strCursor)*lineBytes
	}
	if s.rng.Bool(s.p.Locality) {
		s.hotCursor = (s.hotCursor + 1) % s.p.HotLines
	} else {
		s.hotCursor = s.rng.Intn(s.p.HotLines)
	}
	return hotBase(s.core) + cache.Addr(s.hotCursor)*lineBytes
}

// SliceStream replays a fixed operation list, then computes forever. Used
// for recorded traces and deterministic tests.
type SliceStream struct {
	Ops []cpu.Op
	i   int
}

// Next implements cpu.Stream.
func (s *SliceStream) Next() cpu.Op {
	if s.i < len(s.Ops) {
		op := s.Ops[s.i]
		s.i++
		return op
	}
	return cpu.Op{Kind: cpu.OpCompute}
}

// Record materializes the first n operations of core coreID's stream —
// a reproducible trace for debugging a specific transaction sequence.
func (p Profile) Record(coreID int, seed uint64, n int) *SliceStream {
	st := p.Stream(coreID, seed)
	ops := make([]cpu.Op, n)
	for i := range ops {
		ops[i] = st.Next()
	}
	return &SliceStream{Ops: ops}
}

// Parallel returns the synthetic analogs of the paper's 21 parallel
// applications (PARSEC and SPLASH-2 with scaled inputs). Parameters sketch
// each benchmark's documented character: streaming intensity (the L1 miss
// rate), read/write balance, sharing intensity and working-set size. Every
// parallel app also touches a small cold footprint that reaches the memory
// controllers (the paper's ~1% MEMORY traffic).
func Parallel() []Profile {
	ps := parallelProfiles()
	for i := range ps {
		ps[i].ColdLines = 1 << 16
		// Scaled so MEMORY messages land near the paper's ~1% share.
		ps[i].ColdFraction = 0.022 * ps[i].StreamFraction
	}
	return ps
}

func parallelProfiles() []Profile {
	return []Profile{
		{Name: "blackscholes", MemFraction: 0.25, WriteFraction: 0.20, HotLines: 192, StreamLines: 1024, StreamFraction: 0.008, SharedLines: 64, SharedFraction: 0.004, Locality: 0.95, HotFraction: 0.2},
		{Name: "bodytrack", MemFraction: 0.30, WriteFraction: 0.22, HotLines: 320, StreamLines: 1024, StreamFraction: 0.020, SharedLines: 256, SharedFraction: 0.008, Locality: 0.90, HotFraction: 0.4},
		{Name: "canneal", MemFraction: 0.34, WriteFraction: 0.28, HotLines: 384, StreamLines: 4096, StreamFraction: 0.050, SharedLines: 512, SharedFraction: 0.010, Locality: 0.70, HotFraction: 0.1},
		{Name: "dedup", MemFraction: 0.32, WriteFraction: 0.28, HotLines: 320, StreamLines: 2048, StreamFraction: 0.028, SharedLines: 256, SharedFraction: 0.010, Locality: 0.86, HotFraction: 0.4},
		{Name: "ferret", MemFraction: 0.31, WriteFraction: 0.24, HotLines: 320, StreamLines: 1536, StreamFraction: 0.022, SharedLines: 256, SharedFraction: 0.008, Locality: 0.88, HotFraction: 0.4},
		{Name: "fluidanimate", MemFraction: 0.32, WriteFraction: 0.30, HotLines: 320, StreamLines: 1024, StreamFraction: 0.018, SharedLines: 512, SharedFraction: 0.012, Locality: 0.88, HotFraction: 0.3},
		{Name: "raytrace", MemFraction: 0.28, WriteFraction: 0.12, HotLines: 384, StreamLines: 2048, StreamFraction: 0.024, SharedLines: 768, SharedFraction: 0.014, Locality: 0.85, HotFraction: 0.2},
		{Name: "swaptions", MemFraction: 0.24, WriteFraction: 0.22, HotLines: 160, StreamLines: 512, StreamFraction: 0.006, SharedLines: 64, SharedFraction: 0.003, Locality: 0.95, HotFraction: 0.2},
		{Name: "vips", MemFraction: 0.30, WriteFraction: 0.26, HotLines: 352, StreamLines: 1536, StreamFraction: 0.016, SharedLines: 192, SharedFraction: 0.006, Locality: 0.90, HotFraction: 0.3},
		{Name: "x264", MemFraction: 0.29, WriteFraction: 0.25, HotLines: 320, StreamLines: 1280, StreamFraction: 0.018, SharedLines: 256, SharedFraction: 0.008, Locality: 0.88, HotFraction: 0.4},
		{Name: "barnes", MemFraction: 0.31, WriteFraction: 0.25, HotLines: 320, StreamLines: 1024, StreamFraction: 0.016, SharedLines: 512, SharedFraction: 0.014, Locality: 0.82, HotFraction: 0.3},
		{Name: "cholesky", MemFraction: 0.30, WriteFraction: 0.27, HotLines: 384, StreamLines: 1536, StreamFraction: 0.020, SharedLines: 256, SharedFraction: 0.008, Locality: 0.88, HotFraction: 0.3},
		{Name: "fft", MemFraction: 0.32, WriteFraction: 0.30, HotLines: 448, StreamLines: 2048, StreamFraction: 0.030, SharedLines: 384, SharedFraction: 0.006, Locality: 0.85, HotFraction: 0.1},
		{Name: "lu_cb", MemFraction: 0.30, WriteFraction: 0.28, HotLines: 320, StreamLines: 1024, StreamFraction: 0.012, SharedLines: 192, SharedFraction: 0.005, Locality: 0.92, HotFraction: 0.2},
		{Name: "lu_ncb", MemFraction: 0.30, WriteFraction: 0.28, HotLines: 352, StreamLines: 1280, StreamFraction: 0.018, SharedLines: 384, SharedFraction: 0.010, Locality: 0.85, HotFraction: 0.2},
		{Name: "ocean_cp", MemFraction: 0.34, WriteFraction: 0.30, HotLines: 416, StreamLines: 3072, StreamFraction: 0.038, SharedLines: 512, SharedFraction: 0.008, Locality: 0.85, HotFraction: 0.1},
		{Name: "ocean_ncp", MemFraction: 0.34, WriteFraction: 0.30, HotLines: 416, StreamLines: 3584, StreamFraction: 0.044, SharedLines: 640, SharedFraction: 0.010, Locality: 0.80, HotFraction: 0.1},
		{Name: "radiosity", MemFraction: 0.30, WriteFraction: 0.24, HotLines: 320, StreamLines: 1024, StreamFraction: 0.014, SharedLines: 640, SharedFraction: 0.016, Locality: 0.80, HotFraction: 0.4},
		{Name: "volrend", MemFraction: 0.28, WriteFraction: 0.15, HotLines: 288, StreamLines: 1024, StreamFraction: 0.012, SharedLines: 512, SharedFraction: 0.012, Locality: 0.85, HotFraction: 0.3},
		{Name: "water_nsquared", MemFraction: 0.29, WriteFraction: 0.24, HotLines: 288, StreamLines: 768, StreamFraction: 0.010, SharedLines: 256, SharedFraction: 0.008, Locality: 0.90, HotFraction: 0.3},
		{Name: "water_spatial", MemFraction: 0.29, WriteFraction: 0.24, HotLines: 304, StreamLines: 768, StreamFraction: 0.009, SharedLines: 224, SharedFraction: 0.006, Locality: 0.90, HotFraction: 0.3},
	}
}

// Multiprogrammed returns the SPEC-like mix: each core runs an independent
// application with a streaming working set and no sharing. Per-core
// variation comes from the per-core RNG seeds.
func Multiprogrammed() Profile {
	return Profile{
		Name:           "mix",
		MemFraction:    0.34,
		WriteFraction:  0.28,
		HotLines:       384,
		StreamLines:    3072,
		StreamFraction: 0.035,
		Locality:       0.85,
		ColdLines:      1 << 16,
		ColdFraction:   0.0008,
	}
}

// ByName returns the named profile: "micro", "mix", any parallel app, or
// any registered generator (Register).
func ByName(name string) (Profile, bool) {
	switch name {
	case "micro":
		return Micro(), true
	case "mix":
		return Multiprogrammed(), true
	}
	for _, p := range Parallel() {
		if p.Name == name {
			return p, true
		}
	}
	return registered(name)
}

// Names lists every workload the evaluation runs: the 21 parallel apps
// plus the multiprogrammed mix.
func Names() []string {
	var out []string
	for _, p := range Parallel() {
		out = append(out, p.Name)
	}
	return append(out, "mix")
}

// Micro returns a uniform microbenchmark profile used by tests and the
// quickstart example.
func Micro() Profile {
	return Profile{
		Name:           "micro",
		MemFraction:    0.30,
		WriteFraction:  0.25,
		HotLines:       384,
		StreamLines:    1536,
		StreamFraction: 0.020,
		SharedLines:    256,
		SharedFraction: 0.010,
		Locality:       0.90,
		HotFraction:    0.3,
		ColdLines:      1 << 16,
		ColdFraction:   0.0005,
	}
}
