package mesh

import (
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	m := New(8, 8)
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		x, y := m.Coord(id)
		if m.Node(x, y) != id {
			t.Fatalf("round trip failed for %d -> (%d,%d)", id, x, y)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 4)
}

func TestOpposite(t *testing.T) {
	pairs := map[Dir]Dir{North: South, South: North, East: West, West: East, Local: Local}
	for d, want := range pairs {
		if got := d.Opposite(); got != want {
			t.Errorf("Opposite(%v) = %v, want %v", d, got, want)
		}
	}
}

func TestDirString(t *testing.T) {
	want := map[Dir]string{Local: "L", North: "N", East: "E", South: "S", West: "W"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Dir(%d).String() = %q want %q", d, d.String(), s)
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	m := New(4, 4)
	if _, ok := m.Neighbor(m.Node(0, 0), North); ok {
		t.Error("node (0,0) should have no North neighbour")
	}
	if _, ok := m.Neighbor(m.Node(0, 0), West); ok {
		t.Error("node (0,0) should have no West neighbour")
	}
	if n, ok := m.Neighbor(m.Node(0, 0), East); !ok || n != m.Node(1, 0) {
		t.Errorf("East neighbour of (0,0) = %v,%v", n, ok)
	}
	if n, ok := m.Neighbor(m.Node(2, 2), South); !ok || n != m.Node(2, 3) {
		t.Errorf("South neighbour of (2,2) = %v,%v", n, ok)
	}
	if _, ok := m.Neighbor(m.Node(1, 1), Local); ok {
		t.Error("Local has no neighbour")
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := New(5, 3)
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		for d := North; d <= West; d++ {
			n, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(n, d.Opposite())
			if !ok2 || back != id {
				t.Fatalf("neighbour symmetry broken at %d dir %v", id, d)
			}
		}
	}
}

func TestHops(t *testing.T) {
	m := New(8, 8)
	if h := m.Hops(m.Node(0, 0), m.Node(7, 7)); h != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", h)
	}
	if h := m.Hops(3, 3); h != 0 {
		t.Errorf("self hops = %d", h)
	}
}

func TestXYPathShape(t *testing.T) {
	m := New(4, 4)
	// XY from (0,0) to (2,2): east, east, south, south.
	p := m.Path(RouteXY, m.Node(0, 0), m.Node(2, 2))
	want := []NodeID{m.Node(0, 0), m.Node(1, 0), m.Node(2, 0), m.Node(2, 1), m.Node(2, 2)}
	if len(p) != len(want) {
		t.Fatalf("path %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
}

func TestYXPathShape(t *testing.T) {
	m := New(4, 4)
	p := m.Path(RouteYX, m.Node(0, 0), m.Node(2, 2))
	want := []NodeID{m.Node(0, 0), m.Node(0, 1), m.Node(0, 2), m.Node(1, 2), m.Node(2, 2)}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
}

// TestRequestReplyPathsMatch is the property the whole paper rests on:
// the YX path from B to A visits exactly the routers of the XY path from A
// to B, in reverse order.
func TestRequestReplyPathsMatch(t *testing.T) {
	m := New(8, 8)
	check := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		fwd := m.Path(RouteXY, src, dst)
		rev := m.Path(RouteYX, dst, src)
		if len(fwd) != len(rev) {
			return false
		}
		for i := range fwd {
			if fwd[i] != rev[len(rev)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPathIsMinimal checks that every DOR path length equals the Manhattan
// distance plus one (for the source node itself).
func TestPathIsMinimal(t *testing.T) {
	m := New(6, 7)
	check := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		for _, r := range []Routing{RouteXY, RouteYX} {
			if len(m.Path(r, src, dst)) != m.Hops(src, dst)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNextDirAtDestination(t *testing.T) {
	m := New(4, 4)
	if d := m.NextDir(RouteXY, 5, 5); d != Local {
		t.Errorf("NextDir at destination = %v, want Local", d)
	}
	if d := m.NextDir(RouteYX, 5, 5); d != Local {
		t.Errorf("NextDir at destination = %v, want Local", d)
	}
}

func TestEdgeNodes(t *testing.T) {
	m := New(4, 4)
	edges := m.EdgeNodes()
	if len(edges) != 12 {
		t.Fatalf("4x4 mesh has %d edge nodes, want 12", len(edges))
	}
	for _, id := range edges {
		x, y := m.Coord(id)
		if x != 0 && y != 0 && x != 3 && y != 3 {
			t.Errorf("node %d (%d,%d) is not on the edge", id, x, y)
		}
	}
}

func TestMemoryControllerNodesFour(t *testing.T) {
	for _, dim := range []int{4, 8} {
		m := New(dim, dim)
		mcs := m.MemoryControllerNodes(4)
		if len(mcs) != 4 {
			t.Fatalf("want 4 MCs, got %d", len(mcs))
		}
		seen := map[NodeID]bool{}
		for _, id := range mcs {
			if seen[id] {
				t.Fatalf("duplicate MC node %d in %dx%d", id, dim, dim)
			}
			seen[id] = true
			x, y := m.Coord(id)
			if x != 0 && y != 0 && x != dim-1 && y != dim-1 {
				t.Errorf("MC node %d (%d,%d) not on edge", id, x, y)
			}
		}
	}
}

func TestMemoryControllerNodesOther(t *testing.T) {
	m := New(4, 4)
	if got := m.MemoryControllerNodes(0); got != nil {
		t.Errorf("0 MCs should be nil, got %v", got)
	}
	mcs := m.MemoryControllerNodes(2)
	if len(mcs) != 2 || mcs[0] == mcs[1] {
		t.Errorf("2 MCs = %v", mcs)
	}
}

func TestPerimeterWalkCoversEdge(t *testing.T) {
	m := New(5, 4)
	walk := m.perimeterWalk()
	if len(walk) != 2*5+2*4-4 {
		t.Fatalf("perimeter walk length %d", len(walk))
	}
	seen := map[NodeID]bool{}
	for _, id := range walk {
		if seen[id] {
			t.Fatalf("perimeter walk repeats node %d", id)
		}
		seen[id] = true
	}
}

func TestRoutingString(t *testing.T) {
	if RouteXY.String() != "XY" || RouteYX.String() != "YX" {
		t.Error("Routing String() mismatch")
	}
}
