// Package mesh models the 2-D mesh topology of the chip: node coordinates,
// port directions, and the two dimension-order routing functions the paper
// relies on (XY for requests, YX for replies) whose paths through the mesh
// visit exactly the same routers in opposite orders.
package mesh

import "fmt"

// Dir identifies one of the five router ports.
type Dir uint8

const (
	// Local is the port connecting the router to its tile's network
	// interface (cores, caches, memory controllers inject and eject here).
	Local Dir = iota
	North
	East
	South
	West
	// NumDirs is the number of port directions on a mesh router.
	NumDirs
)

// String returns the conventional one-letter name of the direction.
func (d Dir) String() string {
	switch d {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the direction a flit sent out of port d arrives on at
// the neighbouring router. Opposite(Local) is Local.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// NodeID numbers tiles row-major: id = y*width + x.
type NodeID int

// Mesh describes a Width x Height 2-D mesh.
type Mesh struct {
	Width, Height int
}

// New returns a mesh of the given dimensions. It panics on non-positive
// dimensions because every caller constructs meshes from validated configs.
func New(width, height int) Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// Nodes returns the number of tiles.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// ClampShards limits a requested shard count to what the row-band tiling
// can honour: at least 1, at most one shard per mesh row.
func (m Mesh) ClampShards(requested int) int {
	if requested < 1 {
		return 1
	}
	if requested > m.Height {
		return m.Height
	}
	return requested
}

// ShardOf maps tile id to its shard under the contiguous row-band tiling
// the parallel engine uses: rows are split into `shards` nearly equal
// horizontal bands, so each shard owns a contiguous range of row-major tile
// ids and every boundary between shards is a single mesh row seam. shards
// must already be clamped (1 <= shards <= Height).
func (m Mesh) ShardOf(id NodeID, shards int) int {
	y := int(id) / m.Width
	return y * shards / m.Height
}

// ShardMap returns ShardOf precomputed for every tile.
func (m Mesh) ShardMap(shards int) []int {
	sm := make([]int, m.Nodes())
	for id := range sm {
		sm[id] = m.ShardOf(NodeID(id), shards)
	}
	return sm
}

// Coord returns the (x, y) coordinates of node id.
func (m Mesh) Coord(id NodeID) (x, y int) {
	return int(id) % m.Width, int(id) / m.Width
}

// Node returns the id of the node at (x, y).
func (m Mesh) Node(x, y int) NodeID { return NodeID(y*m.Width + x) }

// Contains reports whether id is a valid node of the mesh.
func (m Mesh) Contains(id NodeID) bool {
	return id >= 0 && int(id) < m.Nodes()
}

// Neighbor returns the node adjacent to id in direction d and true, or
// (0, false) at a mesh edge or for Local.
func (m Mesh) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	x, y := m.Coord(id)
	switch d {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	default:
		return 0, false
	}
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		return 0, false
	}
	return m.Node(x, y), true
}

// Hops returns the Manhattan distance between two nodes, which equals the
// number of links any minimal dimension-order route traverses.
func (m Mesh) Hops(a, b NodeID) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Routing selects a deterministic dimension-order routing function.
type Routing uint8

const (
	// RouteXY resolves the X offset first, then Y. The paper routes
	// requests this way.
	RouteXY Routing = iota
	// RouteYX resolves the Y offset first, then X. The paper routes
	// replies this way so a reply visits the same routers as its request.
	RouteYX
)

func (r Routing) String() string {
	if r == RouteXY {
		return "XY"
	}
	return "YX"
}

// NextDir returns the output direction a packet at cur must take toward dst
// under routing r. It returns Local when cur == dst.
func (m Mesh) NextDir(r Routing, cur, dst NodeID) Dir {
	cx, cy := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch r {
	case RouteXY:
		if cx < dx {
			return East
		}
		if cx > dx {
			return West
		}
		if cy < dy {
			return South
		}
		if cy > dy {
			return North
		}
	case RouteYX:
		if cy < dy {
			return South
		}
		if cy > dy {
			return North
		}
		if cx < dx {
			return East
		}
		if cx > dx {
			return West
		}
	}
	return Local
}

// Path returns the ordered list of nodes a packet visits from src to dst
// (inclusive of both endpoints) under routing r.
func (m Mesh) Path(r Routing, src, dst NodeID) []NodeID {
	path := []NodeID{src}
	cur := src
	for cur != dst {
		d := m.NextDir(r, cur, dst)
		next, ok := m.Neighbor(cur, d)
		if !ok {
			panic(fmt.Sprintf("mesh: routing %v fell off the mesh at %d toward %d", r, cur, dst))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// EdgeNodes returns nodes on the perimeter of the mesh, used to place the
// four memory controllers "distributed in the edges of the chip".
func (m Mesh) EdgeNodes() []NodeID {
	var edges []NodeID
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		x, y := m.Coord(id)
		if x == 0 || y == 0 || x == m.Width-1 || y == m.Height-1 {
			edges = append(edges, id)
		}
	}
	return edges
}

// MemoryControllerNodes places n controllers spread across the four edges,
// one near the middle of each side (matching the paper's 4-MC layout for
// both 16- and 64-node chips). For n != 4 it spaces them evenly along the
// perimeter walk.
func (m Mesh) MemoryControllerNodes(n int) []NodeID {
	if n <= 0 {
		return nil
	}
	if n == 4 {
		return []NodeID{
			m.Node(m.Width/2, 0),            // top edge
			m.Node(m.Width-1, m.Height/2),   // right edge
			m.Node(m.Width/2-1, m.Height-1), // bottom edge
			m.Node(0, m.Height/2-1),         // left edge
		}
	}
	perim := m.perimeterWalk()
	out := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, perim[i*len(perim)/n])
	}
	return out
}

// perimeterWalk lists the border nodes clockwise starting at (0, 0).
func (m Mesh) perimeterWalk() []NodeID {
	if m.Width == 1 && m.Height == 1 {
		return []NodeID{0}
	}
	var walk []NodeID
	for x := 0; x < m.Width; x++ {
		walk = append(walk, m.Node(x, 0))
	}
	for y := 1; y < m.Height; y++ {
		walk = append(walk, m.Node(m.Width-1, y))
	}
	if m.Height > 1 {
		for x := m.Width - 2; x >= 0; x-- {
			walk = append(walk, m.Node(x, m.Height-1))
		}
	}
	if m.Width > 1 {
		for y := m.Height - 2; y >= 1; y-- {
			walk = append(walk, m.Node(0, y))
		}
	}
	return walk
}
