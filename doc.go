// Package reactivenoc reproduces "Dynamic construction of circuits for
// reactive traffic in homogeneous CMPs" (Ortín-Obón et al., DATE 2014): a
// cycle-accurate chip-multiprocessor simulator — mesh NoC with wormhole VC
// routers, MESI directory coherence, trace-driven cores — plus the paper's
// Reactive Circuits mechanism and the full evaluation harness.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table and figure at reduced scale; the
// cmd/rcsweep tool runs the full suite.
package reactivenoc
